package pyast

import (
	"strings"
	"testing"
)

const extractSrc = `import os

@python_app
def first(x):
    import numpy
    if x:
        return numpy.ones(3)
    return None

def second():
    pass


class Thing:
    def method(self):
        return 1

x = 1
`

func TestExtractFunctionSource(t *testing.T) {
	got, err := ExtractFunctionSource(extractSrc, "first")
	if err != nil {
		t.Fatal(err)
	}
	want := `@python_app
def first(x):
    import numpy
    if x:
        return numpy.ones(3)
    return None
`
	if got != want {
		t.Fatalf("extracted:\n%q\nwant:\n%q", got, want)
	}
	// The extraction must itself re-parse cleanly.
	if _, err := Parse(got); err != nil {
		t.Fatalf("extracted source does not parse: %v", err)
	}
}

func TestExtractUndecoratedFunction(t *testing.T) {
	got, err := ExtractFunctionSource(extractSrc, "second")
	if err != nil {
		t.Fatal(err)
	}
	if got != "def second():\n    pass\n" {
		t.Fatalf("extracted %q", got)
	}
}

func TestExtractMethodInsideClass(t *testing.T) {
	got, err := ExtractFunctionSource(extractSrc, "method")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(got, "def method(self):") || !strings.Contains(got, "return 1") {
		t.Fatalf("extracted %q", got)
	}
}

func TestExtractClassSource(t *testing.T) {
	got, err := ExtractClassSource(extractSrc, "Thing")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(got, "class Thing:") || !strings.Contains(got, "return 1") {
		t.Fatalf("extracted %q", got)
	}
	if strings.Contains(got, "x = 1") {
		t.Fatalf("extraction overshot the class: %q", got)
	}
}

func TestExtractLastFunctionAtEOF(t *testing.T) {
	src := "def last():\n    return 42"
	got, err := ExtractFunctionSource(src, "last")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(got, "return 42") {
		t.Fatalf("extracted %q", got)
	}
}

func TestExtractErrors(t *testing.T) {
	if _, err := ExtractFunctionSource(extractSrc, "missing"); err == nil {
		t.Fatal("missing function extracted")
	}
	if _, err := ExtractClassSource(extractSrc, "missing"); err == nil {
		t.Fatal("missing class extracted")
	}
	if _, err := ExtractFunctionSource("def f(:\n", "f"); err == nil {
		t.Fatal("syntax error not propagated")
	}
}

func TestExtractedFunctionRoundTripsThroughAnalysis(t *testing.T) {
	// Extraction -> re-parse -> same body structure.
	got, err := ExtractFunctionSource(extractSrc, "first")
	if err != nil {
		t.Fatal(err)
	}
	mod, err := Parse(got)
	if err != nil {
		t.Fatal(err)
	}
	fn, ok := mod.Function("first")
	if !ok {
		t.Fatal("re-parsed extraction lost the function")
	}
	if len(fn.Decorators) != 1 || fn.Decorators[0] != "python_app" {
		t.Fatalf("decorators = %v", fn.Decorators)
	}
	if len(fn.Body) != 3 {
		t.Fatalf("body = %d statements", len(fn.Body))
	}
}

func TestEndLineDoesNotSwallowFollowingCode(t *testing.T) {
	got, err := ExtractFunctionSource(extractSrc, "first")
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(got, "def second") {
		t.Fatalf("extraction swallowed the next function:\n%s", got)
	}
}
