package pyast

import (
	"fmt"
	"strings"
)

// ExtractFunctionSource returns the source text of the named function —
// decorators included — ready for serialization to a worker. The paper's
// invocation model requires shipping "(at least) the code for the named
// function" alongside its pickled arguments; this is that extraction.
func ExtractFunctionSource(src, name string) (string, error) {
	mod, err := Parse(src)
	if err != nil {
		return "", err
	}
	fn, ok := mod.Function(name)
	if !ok {
		return "", fmt.Errorf("pyast: function %q not found", name)
	}
	start := fn.Line
	if fn.DecoratorLine > 0 {
		start = fn.DecoratorLine
	}
	return sliceLines(src, start, fn.EndLine)
}

// ExtractClassSource returns the source text of the named top-level class.
func ExtractClassSource(src, name string) (string, error) {
	mod, err := Parse(src)
	if err != nil {
		return "", err
	}
	for _, s := range mod.Body {
		cls, ok := s.(*ClassDef)
		if !ok || cls.Name != name {
			continue
		}
		start := cls.Line
		if cls.DecoratorLine > 0 {
			start = cls.DecoratorLine
		}
		return sliceLines(src, start, cls.EndLine)
	}
	return "", fmt.Errorf("pyast: class %q not found", name)
}

// sliceLines returns lines start..end (1-based, inclusive) of src with the
// original line endings normalized to "\n".
func sliceLines(src string, start, end int) (string, error) {
	src = strings.ReplaceAll(src, "\r\n", "\n")
	src = strings.ReplaceAll(src, "\r", "\n")
	lines := strings.Split(src, "\n")
	if start < 1 || end < start || end > len(lines) {
		return "", fmt.Errorf("pyast: line range %d-%d outside source (%d lines)",
			start, end, len(lines))
	}
	return strings.Join(lines[start-1:end], "\n") + "\n", nil
}
