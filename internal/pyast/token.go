// Package pyast provides a tokenizer and a block-structure parser for a
// practical subset of Python 3 source, sufficient for the static dependency
// analysis of the LFM paper (§V-B): finding import statements (and variations
// thereof) at module level and inside function bodies, without executing any
// code. It handles comments, all string-literal forms, explicit and implicit
// line continuation, and indentation-based block structure.
package pyast

import "fmt"

// Kind classifies a token.
type Kind int

// Token kinds. COMMENT tokens are consumed by the lexer and never emitted.
const (
	EOF     Kind = iota
	NEWLINE      // logical end of statement
	INDENT       // block opened
	DEDENT       // block closed
	NAME         // identifier or keyword
	NUMBER       // numeric literal (scanned loosely)
	STRING       // string literal of any quoting/prefix form
	OP           // operator or punctuation
)

var kindNames = map[Kind]string{
	EOF: "EOF", NEWLINE: "NEWLINE", INDENT: "INDENT", DEDENT: "DEDENT",
	NAME: "NAME", NUMBER: "NUMBER", STRING: "STRING", OP: "OP",
}

func (k Kind) String() string { return kindNames[k] }

// Token is one lexical token with its source position (1-based line/column).
type Token struct {
	Kind Kind
	// Text is the token text. For STRING tokens it is the *decoded inner
	// text* for ordinary quotes (prefixes and quotes stripped, no escape
	// processing beyond quote removal), which is what import analysis of
	// __import__("name") needs.
	Text string
	Line int
	Col  int
}

func (t Token) String() string {
	return fmt.Sprintf("%s(%q)@%d:%d", t.Kind, t.Text, t.Line, t.Col)
}

// keywords is the Python 3.8 keyword set. Soft keywords (match/case) are
// treated as names, as they were in the Python versions the paper targets.
var keywords = map[string]bool{
	"False": true, "None": true, "True": true, "and": true, "as": true,
	"assert": true, "async": true, "await": true, "break": true, "class": true,
	"continue": true, "def": true, "del": true, "elif": true, "else": true,
	"except": true, "finally": true, "for": true, "from": true, "global": true,
	"if": true, "import": true, "in": true, "is": true, "lambda": true,
	"nonlocal": true, "not": true, "or": true, "pass": true, "raise": true,
	"return": true, "try": true, "while": true, "with": true, "yield": true,
}

// IsKeyword reports whether the token is the given Python keyword.
func (t Token) IsKeyword(kw string) bool {
	return t.Kind == NAME && t.Text == kw && keywords[kw]
}

// SyntaxError describes a tokenization or parse failure with its position.
type SyntaxError struct {
	Line int
	Col  int
	Msg  string
}

func (e *SyntaxError) Error() string {
	return fmt.Sprintf("pyast: line %d:%d: %s", e.Line, e.Col, e.Msg)
}

func errAt(line, col int, format string, args ...any) error {
	return &SyntaxError{Line: line, Col: col, Msg: fmt.Sprintf(format, args...)}
}
