package envpack

import (
	"lfm/internal/pypkg"
	"lfm/internal/sim"
)

// CostModel estimates the wall-clock cost of environment operations for the
// simulator. Parameters are calibrated so single-node magnitudes match the
// paper's Table II (create times of tens of seconds for small environments
// through several minutes for TensorFlow-scale stacks) and Table I (Conda
// activation well under a second; containers seconds to tens of seconds).
type CostModel struct {
	// SolverBase and SolverPerPackage model Conda's dependency solve.
	SolverBase       sim.Time
	SolverPerPackage sim.Time

	// DownloadBandwidth is bytes/second fetching package archives.
	DownloadBandwidth float64

	// InstallPerFile and InstallPerByte model extracting and linking
	// packages into an environment.
	InstallPerFile sim.Time
	InstallPerByte sim.Time

	// CompressBandwidth and DecompressBandwidth are conda-pack tarball
	// creation/extraction rates, in (installed) bytes/second.
	CompressBandwidth   float64
	DecompressBandwidth float64

	// PackRatio is packed bytes / installed bytes.
	PackRatio float64

	// RelocatePerFile models conda-unpack prefix rewriting.
	RelocatePerFile sim.Time

	// ActivateTime is Conda environment activation (env-var changes only).
	ActivateTime sim.Time

	// AnalyzeBase and AnalyzePerPackage model the static analysis tool:
	// parsing the function and introspecting the environment.
	AnalyzeBase       sim.Time
	AnalyzePerPackage sim.Time

	// ImportPerFile and ImportPerByte model the Python-side cost of
	// importing a package's modules once its files are locally readable
	// (bytecode compilation and module initialization).
	ImportPerFile sim.Time
	ImportPerByte sim.Time

	// ImportMetaFraction is the fraction of a package's files touched by
	// one import (metadata operations on the filesystem holding it).
	ImportMetaFraction float64

	// WarmMetaFloor and WarmMetaCeil bound the fraction of cold metadata
	// operations that later importers of the same closure still pay once
	// the metadata server's cache is warm. The fraction scales with the
	// closure's file count (WarmMetaFilesScale files => fraction 1.0
	// before clamping): big stacks evict cache entries faster, which is
	// why TensorFlow-sized imports keep hammering the server while NumPy
	// imports go quiet after the first client (Figure 4's split).
	WarmMetaFloor      float64
	WarmMetaCeil       float64
	WarmMetaFilesScale float64
}

// DefaultCostModel returns the calibrated model described above.
func DefaultCostModel() CostModel {
	return CostModel{
		SolverBase:          8 * sim.Second,
		SolverPerPackage:    350 * sim.Millisecond,
		DownloadBandwidth:   30e6, // 30 MB/s from package mirrors
		InstallPerFile:      400e-6,
		InstallPerByte:      sim.Time(1.0 / 200e6), // 200 MB/s local install
		CompressBandwidth:   80e6,
		DecompressBandwidth: 250e6,
		PackRatio:           0.45,
		RelocatePerFile:     60e-6,
		ActivateTime:        120 * sim.Millisecond,
		AnalyzeBase:         300 * sim.Millisecond,
		AnalyzePerPackage:   40 * sim.Millisecond,
		ImportPerFile:       250e-6,
		ImportPerByte:       sim.Time(1.0 / 500e6),
		ImportMetaFraction:  0.35,
		WarmMetaFloor:       0.01,
		WarmMetaCeil:        0.25,
		WarmMetaFilesScale:  200000,
	}
}

// WarmMetaFraction returns the fraction of cold metadata operations charged
// to importers once the closure's metadata is server-cached.
func (c CostModel) WarmMetaFraction(files int) float64 {
	if c.WarmMetaFilesScale <= 0 {
		return 1
	}
	f := float64(files) / c.WarmMetaFilesScale
	if f < c.WarmMetaFloor {
		f = c.WarmMetaFloor
	}
	if f > c.WarmMetaCeil {
		f = c.WarmMetaCeil
	}
	return f
}

// AnalyzeTime estimates static dependency analysis for a closure.
func (c CostModel) AnalyzeTime(res *pypkg.Resolution) sim.Time {
	return c.AnalyzeBase + sim.Time(res.Len())*c.AnalyzePerPackage
}

// SolveTime estimates the Conda dependency solve alone.
func (c CostModel) SolveTime(res *pypkg.Resolution) sim.Time {
	return c.SolverBase + sim.Time(res.Len())*c.SolverPerPackage
}

// CreateTime estimates building the environment from scratch on a node with
// package downloads: solve + download + install.
func (c CostModel) CreateTime(res *pypkg.Resolution) sim.Time {
	download := sim.Time(float64(res.TotalArchiveBytes()) / c.DownloadBandwidth)
	install := sim.Time(res.TotalFiles())*c.InstallPerFile +
		sim.Time(res.TotalInstalledBytes())*c.InstallPerByte
	return c.SolveTime(res) + download + install
}

// PackedBytes estimates the conda-pack tarball size for a closure.
func (c CostModel) PackedBytes(res *pypkg.Resolution) int64 {
	return int64(float64(res.TotalInstalledBytes()) * c.PackRatio)
}

// PackTime estimates conda-pack tarball creation on the submit node.
func (c CostModel) PackTime(res *pypkg.Resolution) sim.Time {
	return sim.Time(float64(res.TotalInstalledBytes()) / c.CompressBandwidth)
}

// UnpackTime estimates extracting a packed environment to local disk and
// relocating it (conda-unpack).
func (c CostModel) UnpackTime(res *pypkg.Resolution) sim.Time {
	extract := sim.Time(float64(res.TotalInstalledBytes()) / c.DecompressBandwidth)
	relocate := sim.Time(res.TotalFiles()) * c.RelocatePerFile
	return extract + relocate
}

// ImportCompute estimates the CPU-side import cost (bytecode compile and
// module init) once files are local; filesystem costs are charged separately
// by the filesystem model.
func (c CostModel) ImportCompute(res *pypkg.Resolution) sim.Time {
	return sim.Time(res.TotalFiles())*c.ImportPerFile +
		sim.Time(res.TotalInstalledBytes()/20)*c.ImportPerByte
}

// ImportMetaOps estimates the number of filesystem metadata operations
// (stat/open) one cold import of the closure performs.
func (c CostModel) ImportMetaOps(res *pypkg.Resolution) int {
	return int(float64(res.TotalFiles()) * c.ImportMetaFraction)
}

// ImportReadBytes estimates the bytes read from the filesystem by one cold
// import (module code, not bulk data).
func (c CostModel) ImportReadBytes(res *pypkg.Resolution) int64 {
	return res.TotalInstalledBytes() / 20
}

// ContainerRuntime describes a container technology's startup costs for the
// Table I comparison: namespace/image-mount setup dominates, and grows with
// image size.
type ContainerRuntime struct {
	Name string
	// StartupBase is fixed per-invocation overhead (namespaces, cgroups,
	// image mount).
	StartupBase sim.Time
	// StartupPerImageByte charges image preparation per byte.
	StartupPerImageByte sim.Time
	// ImageOverheadBytes is added to the environment size for the OS layers
	// a container image carries.
	ImageOverheadBytes int64
}

// ContainerRuntimes returns the three container technologies of Table I.
// Magnitudes follow the paper: all are one or more orders of magnitude
// slower to start than Conda activation.
func ContainerRuntimes() []ContainerRuntime {
	return []ContainerRuntime{
		{Name: "Singularity", StartupBase: 1.1 * sim.Second,
			StartupPerImageByte: sim.Time(1.0 / 2.5e9), ImageOverheadBytes: 350e6},
		{Name: "Shifter", StartupBase: 0.9 * sim.Second,
			StartupPerImageByte: sim.Time(1.0 / 3e9), ImageOverheadBytes: 300e6},
		{Name: "Docker", StartupBase: 1.8 * sim.Second,
			StartupPerImageByte: sim.Time(1.0 / 2e9), ImageOverheadBytes: 450e6},
	}
}

// Startup estimates cold-starting the runtime around an environment of the
// given installed size.
func (r ContainerRuntime) Startup(envBytes int64) sim.Time {
	return r.StartupBase + sim.Time(envBytes+r.ImageOverheadBytes)*r.StartupPerImageByte
}
