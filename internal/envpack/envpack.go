// Package envpack builds, packs, unpacks, and relocates Python environments,
// mirroring the conda / conda-pack workflow of the LFM paper (§V-C, §V-D):
// resolve a dependency list, install it into an environment directory,
// capture the environment as a tarball, move the tarball to node-local
// storage, extract it, and rewrite the environment prefix for its new home.
//
// Packing is real: Pack produces a genuine .tar.gz whose layout follows a
// Conda environment (conda-meta/ metadata, one directory per package, and
// placeholder payload files). Payload bytes are scaled down from the true
// installed sizes (PayloadScale) so that artifacts remain manageable while
// preserving the file-count structure that drives metadata-load behaviour.
// The true sizes are recorded in the manifest and used by the cost model.
package envpack

import (
	"archive/tar"
	"bytes"
	"compress/gzip"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"lfm/internal/pypkg"
)

// ManifestPackage describes one package in a packed environment.
type ManifestPackage struct {
	Name           string `json:"name"`
	Version        string `json:"version"`
	FileCount      int    `json:"file_count"`
	InstalledBytes int64  `json:"installed_bytes"`
	ArchiveBytes   int64  `json:"archive_bytes"`
	NonPython      bool   `json:"non_python,omitempty"`
}

// Manifest is the metadata stored inside every packed environment.
type Manifest struct {
	Name     string            `json:"name"`
	Prefix   string            `json:"prefix"`
	Packages []ManifestPackage `json:"packages"`
	// TotalFiles and TotalBytes are the true (unscaled) environment totals.
	TotalFiles int   `json:"total_files"`
	TotalBytes int64 `json:"total_bytes"`
}

// Packer controls tarball generation.
type Packer struct {
	// PayloadScale divides true installed bytes when generating placeholder
	// payloads. 1 packs at full size. Default 1000.
	PayloadScale int64
	// MaxFilesPerPackage caps per-package placeholder file entries; file
	// counts above the cap are represented by the manifest only. Default
	// 2000, which keeps huge stacks (TensorFlow: ~26k files) packable in
	// tests while preserving structure for typical packages.
	MaxFilesPerPackage int
	// Prefix is the environment's install prefix recorded for relocation.
	Prefix string
}

// DefaultPacker returns a packer with the defaults described above.
func DefaultPacker() *Packer {
	return &Packer{PayloadScale: 1000, MaxFilesPerPackage: 2000, Prefix: "/home/user/miniconda3/envs/app"}
}

// Tarball is a packed environment.
type Tarball struct {
	Name string
	// Data is the gzip-compressed tar stream.
	Data []byte
	// Manifest is the environment metadata (also stored inside Data).
	Manifest Manifest
	// Entries is the number of real tar entries written.
	Entries int
}

// PackedBytes reports the tarball's compressed size.
func (t *Tarball) PackedBytes() int64 { return int64(len(t.Data)) }

// Pack captures a resolved environment into a tarball.
func (p *Packer) Pack(name string, res *pypkg.Resolution) (*Tarball, error) {
	if p.PayloadScale <= 0 || p.MaxFilesPerPackage <= 0 {
		return nil, fmt.Errorf("envpack: invalid packer configuration %+v", p)
	}
	man := Manifest{Name: name, Prefix: p.Prefix}
	for _, pkg := range res.Packages {
		man.Packages = append(man.Packages, ManifestPackage{
			Name:           pkg.Name,
			Version:        pkg.Version.String(),
			FileCount:      pkg.FileCount,
			InstalledBytes: pkg.InstalledBytes,
			ArchiveBytes:   pkg.ArchiveBytes,
			NonPython:      pkg.NonPython,
		})
		man.TotalFiles += pkg.FileCount
		man.TotalBytes += pkg.InstalledBytes
	}

	var buf bytes.Buffer
	gz := gzip.NewWriter(&buf)
	tw := tar.NewWriter(gz)
	entries := 0
	now := time.Unix(0, 0) // deterministic archives

	write := func(path string, data []byte) error {
		hdr := &tar.Header{
			Name: path, Mode: 0o644, Size: int64(len(data)), ModTime: now,
			Typeflag: tar.TypeReg,
		}
		if err := tw.WriteHeader(hdr); err != nil {
			return err
		}
		_, err := tw.Write(data)
		entries++
		return err
	}

	manJSON, err := json.MarshalIndent(man, "", "  ")
	if err != nil {
		return nil, err
	}
	if err := write("conda-meta/manifest.json", manJSON); err != nil {
		return nil, err
	}
	if err := write("conda-meta/prefix", []byte(p.Prefix+"\n")); err != nil {
		return nil, err
	}

	for _, pkg := range res.Packages {
		dir := "pkgs/" + pkg.Name + "-" + pkg.Version.String()
		meta, err := json.Marshal(pkg)
		if err != nil {
			return nil, err
		}
		if err := write(dir+"/info.json", meta); err != nil {
			return nil, err
		}
		files := pkg.FileCount
		if files > p.MaxFilesPerPackage {
			files = p.MaxFilesPerPackage
		}
		payload := pkg.InstalledBytes / p.PayloadScale
		for i := 0; i < files; i++ {
			var data []byte
			if i == 0 && payload > 0 {
				data = make([]byte, payload)
			}
			if err := write(fmt.Sprintf("%s/f%05d.py", dir, i), data); err != nil {
				return nil, err
			}
		}
	}

	if err := tw.Close(); err != nil {
		return nil, err
	}
	if err := gz.Close(); err != nil {
		return nil, err
	}
	return &Tarball{Name: name, Data: buf.Bytes(), Manifest: man, Entries: entries}, nil
}

// ReadManifest extracts the manifest from a packed environment without
// unpacking payload files.
func ReadManifest(data []byte) (*Manifest, error) {
	gz, err := gzip.NewReader(bytes.NewReader(data))
	if err != nil {
		return nil, fmt.Errorf("envpack: not a packed environment: %w", err)
	}
	defer gz.Close()
	tr := tar.NewReader(gz)
	for {
		hdr, err := tr.Next()
		if err == io.EOF {
			return nil, fmt.Errorf("envpack: manifest not found")
		}
		if err != nil {
			return nil, err
		}
		if hdr.Name == "conda-meta/manifest.json" {
			var man Manifest
			if err := json.NewDecoder(tr).Decode(&man); err != nil {
				return nil, err
			}
			return &man, nil
		}
	}
}

// Unpack extracts a packed environment into dir (which must exist) and
// returns the manifest. Paths are sanitized against traversal.
func Unpack(data []byte, dir string) (*Manifest, error) {
	gz, err := gzip.NewReader(bytes.NewReader(data))
	if err != nil {
		return nil, fmt.Errorf("envpack: not a packed environment: %w", err)
	}
	defer gz.Close()
	tr := tar.NewReader(gz)
	var man *Manifest
	for {
		hdr, err := tr.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, err
		}
		clean := filepath.Clean(hdr.Name)
		if strings.HasPrefix(clean, "..") || filepath.IsAbs(clean) {
			return nil, fmt.Errorf("envpack: unsafe path %q in archive", hdr.Name)
		}
		dst := filepath.Join(dir, clean)
		if err := os.MkdirAll(filepath.Dir(dst), 0o755); err != nil {
			return nil, err
		}
		f, err := os.OpenFile(dst, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
		if err != nil {
			return nil, err
		}
		if _, err := io.Copy(f, tr); err != nil {
			f.Close()
			return nil, err
		}
		if err := f.Close(); err != nil {
			return nil, err
		}
		if clean == filepath.Join("conda-meta", "manifest.json") {
			raw, err := os.ReadFile(dst)
			if err != nil {
				return nil, err
			}
			man = new(Manifest)
			if err := json.Unmarshal(raw, man); err != nil {
				return nil, err
			}
		}
	}
	if man == nil {
		return nil, fmt.Errorf("envpack: manifest not found")
	}
	return man, nil
}

// Relocate rewrites the environment prefix after unpacking into a new
// directory — the conda-unpack step the paper performs to "reconfigure the
// package for its new LFM". It returns the previous prefix.
func Relocate(dir, newPrefix string) (string, error) {
	prefixFile := filepath.Join(dir, "conda-meta", "prefix")
	old, err := os.ReadFile(prefixFile)
	if err != nil {
		return "", fmt.Errorf("envpack: not an unpacked environment: %w", err)
	}
	if err := os.WriteFile(prefixFile, []byte(newPrefix+"\n"), 0o644); err != nil {
		return "", err
	}
	return strings.TrimSpace(string(old)), nil
}

// SortedPackageNames lists manifest package names, sorted, for display.
func (m *Manifest) SortedPackageNames() []string {
	names := make([]string, len(m.Packages))
	for i, p := range m.Packages {
		names[i] = p.Name
	}
	sort.Strings(names)
	return names
}
