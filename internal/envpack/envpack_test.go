package envpack

import (
	"archive/tar"
	"bytes"
	"compress/gzip"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"lfm/internal/pypkg"
)

func numpyResolution(t *testing.T) *pypkg.Resolution {
	t.Helper()
	ix := pypkg.DefaultCatalog()
	res, err := ix.Resolve([]pypkg.Spec{pypkg.Any("numpy")})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestPackRoundTrip(t *testing.T) {
	res := numpyResolution(t)
	tb, err := DefaultPacker().Pack("np-env", res)
	if err != nil {
		t.Fatal(err)
	}
	if tb.PackedBytes() == 0 {
		t.Fatal("empty tarball")
	}
	if tb.Manifest.TotalFiles != res.TotalFiles() {
		t.Fatalf("manifest files = %d, want %d", tb.Manifest.TotalFiles, res.TotalFiles())
	}
	if tb.Manifest.TotalBytes != res.TotalInstalledBytes() {
		t.Fatalf("manifest bytes = %d, want %d", tb.Manifest.TotalBytes, res.TotalInstalledBytes())
	}

	man, err := ReadManifest(tb.Data)
	if err != nil {
		t.Fatal(err)
	}
	if man.Name != "np-env" || len(man.Packages) != res.Len() {
		t.Fatalf("manifest = %+v", man)
	}

	dir := t.TempDir()
	man2, err := Unpack(tb.Data, dir)
	if err != nil {
		t.Fatal(err)
	}
	if man2.Name != "np-env" {
		t.Fatalf("unpacked manifest = %+v", man2)
	}
	// The unpacked tree contains per-package info files.
	np, _ := res.Lookup("numpy")
	info := filepath.Join(dir, "pkgs", "numpy-"+np.Version.String(), "info.json")
	if _, err := os.Stat(info); err != nil {
		t.Fatalf("unpacked tree missing %s: %v", info, err)
	}
}

func TestPackDeterministic(t *testing.T) {
	res := numpyResolution(t)
	a, err := DefaultPacker().Pack("e", res)
	if err != nil {
		t.Fatal(err)
	}
	b, err := DefaultPacker().Pack("e", res)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Data, b.Data) {
		t.Fatal("packing is not deterministic")
	}
}

func TestPackCapsFileEntries(t *testing.T) {
	res := numpyResolution(t)
	p := DefaultPacker()
	p.MaxFilesPerPackage = 10
	tb, err := p.Pack("e", res)
	if err != nil {
		t.Fatal(err)
	}
	// 2 meta entries + per package: info.json + <=10 files.
	max := 2 + res.Len()*(1+10)
	if tb.Entries > max {
		t.Fatalf("entries = %d, want <= %d", tb.Entries, max)
	}
	// Manifest still records true counts.
	if tb.Manifest.TotalFiles != res.TotalFiles() {
		t.Fatal("manifest no longer records true file count")
	}
}

func TestRelocate(t *testing.T) {
	res := numpyResolution(t)
	tb, err := DefaultPacker().Pack("e", res)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	if _, err := Unpack(tb.Data, dir); err != nil {
		t.Fatal(err)
	}
	old, err := Relocate(dir, "/scratch/worker3/envs/e")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(old, "miniconda3") {
		t.Fatalf("old prefix = %q", old)
	}
	got, err := os.ReadFile(filepath.Join(dir, "conda-meta", "prefix"))
	if err != nil {
		t.Fatal(err)
	}
	if strings.TrimSpace(string(got)) != "/scratch/worker3/envs/e" {
		t.Fatalf("new prefix = %q", got)
	}
	if _, err := Relocate(t.TempDir(), "/x"); err == nil {
		t.Fatal("relocating a non-environment directory should fail")
	}
}

func TestUnpackRejectsTraversal(t *testing.T) {
	// Hand-craft a malicious archive.
	var buf bytes.Buffer
	gzw, tw := newTarGz(&buf)
	writeEntry(t, tw, "../evil", []byte("x"))
	closeTarGz(t, gzw, tw)
	if _, err := Unpack(buf.Bytes(), t.TempDir()); err == nil {
		t.Fatal("path traversal accepted")
	}
}

func TestReadManifestErrors(t *testing.T) {
	if _, err := ReadManifest([]byte("not a gzip")); err == nil {
		t.Fatal("garbage accepted")
	}
	var buf bytes.Buffer
	gzw, tw := newTarGz(&buf)
	writeEntry(t, tw, "random.txt", []byte("x"))
	closeTarGz(t, gzw, tw)
	if _, err := ReadManifest(buf.Bytes()); err == nil {
		t.Fatal("archive without manifest accepted")
	}
}

func TestCostModelOrdering(t *testing.T) {
	ix := pypkg.DefaultCatalog()
	c := DefaultCostModel()
	get := func(name string) *pypkg.Resolution {
		res, err := ix.Resolve([]pypkg.Spec{pypkg.Any(name)})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	py, np, tf := get("python"), get("numpy"), get("tensorflow")
	// Create cost ordering follows closure size (Table II shape).
	if !(c.CreateTime(py) < c.CreateTime(np) && c.CreateTime(np) < c.CreateTime(tf)) {
		t.Fatalf("create times not ordered: py=%v np=%v tf=%v",
			c.CreateTime(py), c.CreateTime(np), c.CreateTime(tf))
	}
	// TensorFlow create is minutes, not milliseconds and not days.
	if ct := c.CreateTime(tf); ct < 60 || ct > 3600 {
		t.Fatalf("tensorflow create time = %v, want minutes-scale", ct.Duration())
	}
	// Unpacking a packed env is much cheaper than creating from scratch.
	if c.UnpackTime(tf) >= c.CreateTime(tf)/2 {
		t.Fatalf("unpack (%v) should be far cheaper than create (%v)",
			c.UnpackTime(tf), c.CreateTime(tf))
	}
	if c.PackedBytes(tf) >= tf.TotalInstalledBytes() {
		t.Fatal("packed size should compress below installed size")
	}
	if c.ImportMetaOps(tf) <= c.ImportMetaOps(np) {
		t.Fatal("bigger closures must touch more metadata")
	}
}

func TestContainerStartupVsConda(t *testing.T) {
	// Table I shape: Conda activation is far faster than any container
	// runtime on every system.
	c := DefaultCostModel()
	env := int64(500e6)
	for _, rt := range ContainerRuntimes() {
		if rt.Startup(env) < 5*c.ActivateTime {
			t.Errorf("%s startup %v not clearly slower than conda %v",
				rt.Name, rt.Startup(env), c.ActivateTime)
		}
	}
}

func TestPackerValidation(t *testing.T) {
	res := numpyResolution(t)
	p := &Packer{} // zero values are invalid
	if _, err := p.Pack("e", res); err == nil {
		t.Fatal("invalid packer accepted")
	}
}

// --- helpers for crafting archives in tests ---

func newTarGz(buf *bytes.Buffer) (*gzip.Writer, *tar.Writer) {
	gzw := gzip.NewWriter(buf)
	return gzw, tar.NewWriter(gzw)
}

func writeEntry(t *testing.T, tw *tar.Writer, name string, data []byte) {
	t.Helper()
	if err := tw.WriteHeader(&tar.Header{Name: name, Mode: 0o644, Size: int64(len(data))}); err != nil {
		t.Fatal(err)
	}
	if _, err := tw.Write(data); err != nil {
		t.Fatal(err)
	}
}

func closeTarGz(t *testing.T, gzw *gzip.Writer, tw *tar.Writer) {
	t.Helper()
	if err := tw.Close(); err != nil {
		t.Fatal(err)
	}
	if err := gzw.Close(); err != nil {
		t.Fatal(err)
	}
}
