package alloc

import (
	"testing"

	"lfm/internal/monitor"
)

func TestPreloadSkipsBootstrap(t *testing.T) {
	a := NewAuto()
	a.Preload("t", []monitor.Resources{
		{Cores: 1, MemoryMB: 84, DiskMB: 880},
		{Cores: 1, MemoryMB: 86, DiskMB: 860},
		{Cores: 1, MemoryMB: 82, DiskMB: 900},
	})
	d := a.Next("t")
	if d.WholeNode {
		t.Fatal("preloaded category still bootstraps with a whole node")
	}
	if d.Request.MemoryMB < 84 || d.Request.MemoryMB > 200 {
		t.Fatalf("label = %v", d.Request)
	}
}

func TestHistoryRoundTrip(t *testing.T) {
	a := NewAuto()
	a.Observe("t", rep(100, true))
	a.Observe("t", rep(120, true))
	hist := a.History("t")
	if len(hist) != 2 {
		t.Fatalf("history = %v", hist)
	}
	// Mutating the export must not corrupt internal state.
	hist[0].MemoryMB = 1e9
	if a.History("t")[0].MemoryMB == 1e9 {
		t.Fatal("History exposed internal storage")
	}

	// A new session preloaded from the export labels identically.
	b := NewAuto()
	b.Preload("t", a.History("t"))
	if got, want := b.Next("t").Request, a.Next("t").Request; got != want {
		t.Fatalf("preloaded label %v != original %v", got, want)
	}
}

func TestHistoryEmptyCategory(t *testing.T) {
	a := NewAuto()
	if h := a.History("nothing"); h != nil {
		t.Fatalf("history = %v", h)
	}
}

func TestPreloadRespectsWindow(t *testing.T) {
	a := NewAuto()
	a.MaxSamples = 5
	peaks := make([]monitor.Resources, 20)
	for i := range peaks {
		peaks[i] = monitor.Resources{Cores: 1, MemoryMB: float64(i + 1)}
	}
	a.Preload("t", peaks)
	if a.Samples("t") != 5 {
		t.Fatalf("samples = %d, want capped at 5", a.Samples("t"))
	}
}
