// Package alloc implements the resource-allocation strategies the paper
// evaluates in §VI-C: perfect knowledge (Oracle), dynamic automatic labeling
// (Auto, the Work Queue first-allocation algorithm of Tovar et al. [21]),
// user-provided imperfect knowledge (Guess), and whole-node allocation
// (Unmanaged). A Strategy decides the resource label each task runs under
// and learns from monitor reports.
package alloc

import (
	"math"
	"sort"

	"lfm/internal/metrics"
	"lfm/internal/monitor"
	"lfm/internal/sim"
)

// Decision is a strategy's answer for one task attempt.
type Decision struct {
	// Request is the resource label to run under.
	Request monitor.Resources
	// WholeNode requests an entire worker regardless of label.
	WholeNode bool
	// Monitorless indicates limits should not be enforced (Unmanaged runs
	// without an LFM).
	Monitorless bool
}

// Strategy labels tasks with resource requests and learns from outcomes.
type Strategy interface {
	// Name identifies the strategy in reports.
	Name() string
	// Next returns the allocation for a fresh task of the given category.
	Next(category string) Decision
	// Retry returns the allocation after attempt failed attempts due to
	// resource exhaustion.
	Retry(category string, attempt int) Decision
	// Observe feeds back a finished attempt's monitor report.
	Observe(category string, rep monitor.Report)
}

// Oracle allocates the exact true peak (optionally padded). It exists only
// as the reference upper bound; the paper stresses that real users cannot
// construct it.
type Oracle struct {
	// Peaks maps task category to true peak usage.
	Peaks map[string]monitor.Resources
	// Pad is a fractional safety margin added to each dimension.
	Pad float64
}

// Name implements Strategy.
func (o *Oracle) Name() string { return "Oracle" }

// Next implements Strategy.
func (o *Oracle) Next(category string) Decision {
	p, ok := o.Peaks[category]
	if !ok {
		return Decision{WholeNode: true}
	}
	return Decision{Request: monitor.Resources{
		Cores:    math.Ceil(p.Cores - 1e-9),
		MemoryMB: p.MemoryMB * (1 + o.Pad),
		DiskMB:   p.DiskMB * (1 + o.Pad),
	}}
}

// Retry implements Strategy. With true peaks retries indicate the oracle's
// knowledge was wrong (the paper observed exactly this for VEP); fall back
// to a whole node.
func (o *Oracle) Retry(category string, attempt int) Decision {
	return Decision{WholeNode: true}
}

// Observe implements Strategy; the oracle learns nothing.
func (o *Oracle) Observe(string, monitor.Report) {}

// Guess allocates a fixed user-provided label for every task, the "imperfect
// knowledge" configuration of existing frameworks.
type Guess struct {
	// Fixed is the label requested for every task regardless of category.
	Fixed monitor.Resources
}

// Name implements Strategy.
func (g *Guess) Name() string { return "Guess" }

// Next implements Strategy.
func (g *Guess) Next(string) Decision { return Decision{Request: g.Fixed} }

// Retry implements Strategy: a user with a fixed guess can only escalate to
// the whole node.
func (g *Guess) Retry(string, int) Decision { return Decision{WholeNode: true} }

// Observe implements Strategy; a fixed guess never adapts.
func (g *Guess) Observe(string, monitor.Report) {}

// Unmanaged allocates an entire worker to every task with no monitoring —
// the coarse-grained status quo the paper argues against.
type Unmanaged struct{}

// Name implements Strategy.
func (u *Unmanaged) Name() string { return "Unmanaged" }

// Next implements Strategy.
func (u *Unmanaged) Next(string) Decision {
	return Decision{WholeNode: true, Monitorless: true}
}

// Retry implements Strategy.
func (u *Unmanaged) Retry(string, int) Decision {
	return Decision{WholeNode: true, Monitorless: true}
}

// Observe implements Strategy.
func (u *Unmanaged) Observe(string, monitor.Report) {}

// Auto implements the automatic first-allocation algorithm: run early tasks
// of a category under a large allocation with monitoring enabled, then label
// subsequent tasks with the allocation that minimizes expected resource
// waste, retrying at full size on exhaustion. See §VI-B2 and [21].
type Auto struct {
	// MinSamples is how many completed observations a category needs before
	// labels shrink below a whole node — the paper's "run a task under a
	// large allocation" bootstrap. Default 1.
	MinSamples int
	// Pad is a fractional margin added to the chosen label's memory and
	// disk. Cores are allocated as whole units (rounded up, unpadded), as
	// Work Queue does.
	Pad float64
	// BootstrapBoost adds decaying early-sample headroom: with n
	// observations, memory and disk labels are scaled by an extra
	// BootstrapBoost/n. One observation says little about the tail; the
	// boost buys packing immediately after the first completion without a
	// burst of exhaustion retries while the model is cold.
	BootstrapBoost float64
	// SafetyStds adds headroom for the unseen tail: the label is inflated
	// by this many standard deviations of the observations at or below the
	// chosen allocation. Spread below the choice measures local noise
	// without dragging a bimodal distribution's far mode into the label.
	// Default 3.
	SafetyStds float64
	// MaxSamples bounds retained history per category (sliding window).
	MaxSamples int

	hist map[string]*history
	reg  *metrics.Registry
}

// SetMetrics attaches a metrics registry: label issues, bootstrap decisions,
// retry escalations, and observations are counted per category from then on.
// Nil detaches.
func (a *Auto) SetMetrics(reg *metrics.Registry) {
	a.reg = reg
	if reg == nil {
		return
	}
	reg.Help("alloc_labels_issued_total", "sized labels issued from the learned model, by category")
	reg.Help("alloc_bootstraps_total", "whole-node bootstrap allocations issued, by category")
	reg.Help("alloc_retry_escalations_total", "full-size retries after resource exhaustion, by category")
	reg.Help("alloc_observations_total", "completed-run peaks fed back into the model, by category")
}

func (a *Auto) count(name, category string) {
	if a.reg != nil {
		a.reg.Counter(name, metrics.L("category", category)).Inc()
	}
}

type history struct {
	peaks   []monitor.Resources
	retries int
}

// NewAuto returns an Auto strategy with the defaults described above.
func NewAuto() *Auto {
	return &Auto{MinSamples: 1, Pad: 0.05, SafetyStds: 3, BootstrapBoost: 2, MaxSamples: 1000, hist: map[string]*history{}}
}

// Name implements Strategy.
func (a *Auto) Name() string { return "Auto" }

// Next implements Strategy.
func (a *Auto) Next(category string) Decision {
	h := a.hist[category]
	if h == nil || len(h.peaks) < a.MinSamples {
		// Bootstrap: large allocation, monitored.
		a.count("alloc_bootstraps_total", category)
		return Decision{WholeNode: true}
	}
	a.count("alloc_labels_issued_total", category)
	return Decision{Request: a.label(h)}
}

// Retry implements Strategy: after an exhaustion failure rerun at full size,
// "rerun the task using a full worker in case of resource exhaustion".
func (a *Auto) Retry(category string, attempt int) Decision {
	if h := a.hist[category]; h != nil {
		h.retries++
	}
	a.count("alloc_retry_escalations_total", category)
	return Decision{WholeNode: true}
}

// Observe implements Strategy. Only completed runs contribute peaks: a
// killed run's measured peak is truncated at the limit and would bias labels
// downward forever.
func (a *Auto) Observe(category string, rep monitor.Report) {
	if !rep.Completed {
		return
	}
	a.count("alloc_observations_total", category)
	h := a.hist[category]
	if h == nil {
		h = &history{}
		a.hist[category] = h
	}
	h.peaks = append(h.peaks, rep.Peak)
	if a.MaxSamples > 0 && len(h.peaks) > a.MaxSamples {
		h.peaks = h.peaks[len(h.peaks)-a.MaxSamples:]
	}
}

// CurrentLabel reports the allocation the strategy would issue for the
// category right now, without counting as an issuance: false while the
// category is still bootstrapping. Telemetry uses it to audit labels against
// the observed peak distribution.
func (a *Auto) CurrentLabel(category string) (monitor.Resources, bool) {
	h := a.hist[category]
	if h == nil || len(h.peaks) < a.MinSamples {
		return monitor.Resources{}, false
	}
	return a.label(h), true
}

// Preload seeds a category with peaks observed in earlier runs, skipping
// the whole-node bootstrap: "This initial measurement can be skipped ...
// if statistics from previous tasks are available" (§VI-B2).
func (a *Auto) Preload(category string, peaks []monitor.Resources) {
	h := a.hist[category]
	if h == nil {
		h = &history{}
		a.hist[category] = h
	}
	h.peaks = append(h.peaks, peaks...)
	if a.MaxSamples > 0 && len(h.peaks) > a.MaxSamples {
		h.peaks = h.peaks[len(h.peaks)-a.MaxSamples:]
	}
}

// History exports a category's observed peaks, for persisting between runs
// and preloading later sessions.
func (a *Auto) History(category string) []monitor.Resources {
	h := a.hist[category]
	if h == nil {
		return nil
	}
	out := make([]monitor.Resources, len(h.peaks))
	copy(out, h.peaks)
	return out
}

// Retries reports how many exhaustion retries a category has needed.
func (a *Auto) Retries(category string) int {
	if h := a.hist[category]; h != nil {
		return h.retries
	}
	return 0
}

// Samples reports how many observations a category has accumulated.
func (a *Auto) Samples(category string) int {
	if h := a.hist[category]; h != nil {
		return len(h.peaks)
	}
	return 0
}

// label picks, per resource dimension, the first allocation minimizing
// expected waste: candidate values are observed peaks, and the cost of
// candidate c is c (paid by every task) plus the overflow probability times
// the retry's cost, with tail headroom added per SafetyStds.
func (a *Auto) label(h *history) monitor.Resources {
	scale := 1 + a.Pad + a.BootstrapBoost/float64(len(h.peaks))
	return monitor.Resources{
		Cores:    math.Ceil(a.chooseDim(h.peaks, func(r monitor.Resources) float64 { return r.Cores }) - 1e-9),
		MemoryMB: a.chooseDim(h.peaks, func(r monitor.Resources) float64 { return r.MemoryMB }) * scale,
		DiskMB:   a.chooseDim(h.peaks, func(r monitor.Resources) float64 { return r.DiskMB }) * scale,
	}
}

func (a *Auto) chooseDim(peaks []monitor.Resources, dim func(monitor.Resources) float64) float64 {
	vals := make([]float64, 0, len(peaks))
	for _, p := range peaks {
		vals = append(vals, dim(p))
	}
	sort.Float64s(vals)
	n := len(vals)
	max := vals[n-1]
	best := max
	bestCost := max * float64(n) // allocating the max never overflows
	for i, c := range vals {
		if i > 0 && c == vals[i-1] {
			continue // duplicate candidate
		}
		// Peaks strictly above c overflow; equal peaks fit.
		overflow := n - sort.SearchFloat64s(vals, c+1e-12)
		// An overflowing task wastes its entire failed attempt (it held c
		// for the full run before the kill) and then pays a full-size
		// retry at max.
		cost := c*float64(n) + float64(overflow)*(c+max)
		if cost < bestCost {
			best = c
			bestCost = cost
		}
	}
	// Tail headroom: the observed maximum of a noisy distribution
	// underestimates its true upper bound, especially with few samples.
	// Inflate by the spread of the observations at or below the choice.
	if a.SafetyStds > 0 {
		var s sim.Stats
		for _, v := range vals {
			if v <= best+1e-12 {
				s.Add(v)
			}
		}
		best += a.SafetyStds * s.Std()
	}
	return best
}
