package alloc

import (
	"math"
	"testing"
	"testing/quick"

	"lfm/internal/monitor"
)

func rep(mem float64, completed bool) monitor.Report {
	return monitor.Report{
		Peak:      monitor.Resources{Cores: 1, MemoryMB: mem, DiskMB: 10},
		Completed: completed,
		Killed:    !completed,
	}
}

func TestOracle(t *testing.T) {
	o := &Oracle{
		Peaks: map[string]monitor.Resources{"a": {Cores: 1, MemoryMB: 110, DiskMB: 1000}},
		Pad:   0.1,
	}
	d := o.Next("a")
	if d.WholeNode {
		t.Fatal("oracle with known peak should not request whole node")
	}
	if d.Request.MemoryMB < 110 || d.Request.MemoryMB > 125 {
		t.Fatalf("request = %v", d.Request)
	}
	if !o.Next("unknown").WholeNode {
		t.Fatal("oracle without knowledge should fall back to whole node")
	}
	if !o.Retry("a", 1).WholeNode {
		t.Fatal("oracle retry should use whole node")
	}
}

func TestGuessFixed(t *testing.T) {
	g := &Guess{Fixed: monitor.Resources{Cores: 1, MemoryMB: 1500, DiskMB: 2000}}
	if d := g.Next("x"); d.Request.MemoryMB != 1500 || d.WholeNode {
		t.Fatalf("decision = %+v", d)
	}
	g.Observe("x", rep(100, true)) // must not adapt
	if d := g.Next("x"); d.Request.MemoryMB != 1500 {
		t.Fatal("guess adapted to observations")
	}
	if !g.Retry("x", 1).WholeNode {
		t.Fatal("guess retry should escalate to whole node")
	}
}

func TestUnmanaged(t *testing.T) {
	u := &Unmanaged{}
	d := u.Next("x")
	if !d.WholeNode || !d.Monitorless {
		t.Fatalf("decision = %+v", d)
	}
}

func TestAutoBootstrapsWithWholeNode(t *testing.T) {
	a := NewAuto()
	if d := a.Next("t"); !d.WholeNode || d.Monitorless {
		t.Fatalf("first decision = %+v, want monitored whole node", d)
	}
}

func TestAutoConvergesToObservedPeaks(t *testing.T) {
	a := NewAuto()
	for i := 0; i < 20; i++ {
		a.Observe("t", rep(84, true))
	}
	d := a.Next("t")
	if d.WholeNode {
		t.Fatal("auto still using whole node after 20 samples")
	}
	// Label ~= 84MB plus pad and residual boost (2/20), the HEP result
	// from §VI-C1 in miniature.
	if d.Request.MemoryMB < 84 || d.Request.MemoryMB > 105 {
		t.Fatalf("label = %v, want ~84MB + pad", d.Request)
	}
}

func TestAutoIgnoresKilledRuns(t *testing.T) {
	a := NewAuto()
	a.Observe("t", rep(100, true))
	for i := 0; i < 50; i++ {
		a.Observe("t", rep(10, false)) // truncated measurements from kills
	}
	d := a.Next("t")
	if d.Request.MemoryMB < 100 {
		t.Fatalf("label = %v; killed runs biased the label down", d.Request)
	}
	if a.Samples("t") != 1 {
		t.Fatalf("samples = %d, want 1", a.Samples("t"))
	}
}

func TestAutoRetryEscalatesAndCounts(t *testing.T) {
	a := NewAuto()
	a.Observe("t", rep(100, true))
	if d := a.Retry("t", 1); !d.WholeNode {
		t.Fatal("retry should escalate to whole node")
	}
	if a.Retries("t") != 1 {
		t.Fatalf("retries = %d", a.Retries("t"))
	}
}

func TestAutoMixedPeaksBalancesWaste(t *testing.T) {
	// 90% of tasks peak at 100MB, 10% at 1000MB. Allocating 1000 to all
	// wastes 900MB on 90% of tasks; allocating 100 costs a retry for 10%.
	// Expected-waste minimization should choose the small label.
	a := NewAuto()
	for i := 0; i < 90; i++ {
		a.Observe("t", rep(100, true))
	}
	for i := 0; i < 10; i++ {
		a.Observe("t", rep(1000, true))
	}
	d := a.Next("t")
	if d.Request.MemoryMB > 200 {
		t.Fatalf("label = %v, want small first allocation", d.Request)
	}
}

func TestAutoHeavySkewPrefersMax(t *testing.T) {
	// Half the tasks are big: retrying half the tasks costs more than
	// padding everyone, so the label should be the max.
	a := NewAuto()
	for i := 0; i < 10; i++ {
		a.Observe("t", rep(900, true))
		a.Observe("t", rep(1000, true))
	}
	d := a.Next("t")
	if d.Request.MemoryMB < 1000 {
		t.Fatalf("label = %v, want max-peak allocation", d.Request)
	}
}

func TestAutoPerCategoryIsolation(t *testing.T) {
	a := NewAuto()
	a.Observe("small", rep(50, true))
	a.Observe("big", rep(5000, true))
	ds, db := a.Next("small"), a.Next("big")
	if ds.Request.MemoryMB >= db.Request.MemoryMB {
		t.Fatalf("small=%v big=%v; categories must not mix", ds.Request, db.Request)
	}
}

func TestAutoSlidingWindow(t *testing.T) {
	a := NewAuto()
	a.MaxSamples = 10
	for i := 0; i < 100; i++ {
		a.Observe("t", rep(float64(100+i), true))
	}
	if a.Samples("t") != 10 {
		t.Fatalf("samples = %d, want capped at 10", a.Samples("t"))
	}
	// Only recent (larger) peaks retained: label reflects them.
	if d := a.Next("t"); d.Request.MemoryMB < 190 {
		t.Fatalf("label = %v, want from recent window", d.Request)
	}
}

// Property: once past bootstrap, the chosen label never drops below the
// smallest observed peak and never exceeds the padded max plus the safety
// headroom (SafetyStds standard deviations of all observations).
func TestAutoLabelBoundsProperty(t *testing.T) {
	prop := func(raw []uint16) bool {
		if len(raw) < 3 {
			return true // need enough samples that the boost is bounded
		}
		a := NewAuto()
		var s, min, max float64
		var all []float64
		min = 1e18
		for _, r := range raw {
			v := float64(r%5000) + 1
			all = append(all, v)
			if v < min {
				min = v
			}
			if v > max {
				max = v
			}
			s += v
			a.Observe("t", rep(v, true))
		}
		mean := s / float64(len(all))
		var m2 float64
		for _, v := range all {
			m2 += (v - mean) * (v - mean)
		}
		std := 0.0
		if len(all) > 1 {
			std = math.Sqrt(m2 / float64(len(all)-1))
		}
		d := a.Next("t")
		if d.WholeNode {
			return false // past MinSamples, must label
		}
		upper := (max + a.SafetyStds*std) * (1 + a.Pad + a.BootstrapBoost/3)
		return d.Request.MemoryMB >= min && d.Request.MemoryMB <= upper+1e-6
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
