// Package runarchive owns the versioned run-archive container: a
// self-contained JSONL artifact capturing everything the differential
// observability layer (internal/diffobs, cmd/lfmdiff) needs to compare two
// runs without re-running either — the serializable scenario configuration
// and seed, the unified run summary (which carries the scheduler counters,
// waste roll-up, serving accounting, and health findings), the decimated
// obs snapshot stream, the telemetry category profiles, the critical-path
// bottleneck buckets, and optionally the flat scheduler event stream for
// first-divergence bisection. Archives are written by `lfmscenario run
// -archive` and `lfmbench -archive-out`, committed as baselines under
// baselines/, and read back standalone by `lfmdiff`.
//
// The container follows the scenario-trace conventions (see
// internal/scenario/trace.go and DESIGN.md §15): every line is one envelope
// object {"kind": "...", "<kind>": {...}}, the first line is the header and
// the last the footer, readers accept any version up to SchemaVersion and
// refuse newer versions with a typed *ArchiveError. Output is
// byte-deterministic for a seed: the writer zeroes the scheduler wall-clock
// nanos (the only hardware-noise field) unless explicitly told to keep
// them, so two same-seed archives are byte-identical.
package runarchive

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"

	"lfm/internal/core"
	"lfm/internal/obs"
	"lfm/internal/sim"
	"lfm/internal/trace"
	"lfm/internal/tseries"
	"lfm/internal/wq"
)

// Format, SchemaVersion, and ToolVersion identify the archive container.
// Bump SchemaVersion when the schema changes shape; never reuse a version.
// ToolVersion is stamped into headers so a reader can name the writer when
// rejecting or explaining an artifact.
const (
	Format        = "lfm-run-archive"
	SchemaVersion = 1
	ToolVersion   = "lfm-0.10"
)

// ArchiveError reasons.
const (
	// BadFormat: the file is not an lfm run archive at all.
	BadFormat = "bad-format"
	// BadVersion: the archive was written by a newer schema version.
	BadVersion = "bad-version"
	// Corrupt: the container parses as the right format but its contents
	// are inconsistent (bad JSON, missing footer, count mismatches).
	Corrupt = "corrupt"
)

// ArchiveError is the typed error for every way an archive can fail to
// load, so callers can distinguish "not an archive" from "newer schema"
// from "damaged file" without string matching.
type ArchiveError struct {
	// Reason is one of the reason constants above.
	Reason string
	// Line is the 1-based offending line, 0 when not line-specific.
	Line int
	// Detail is the human-readable specifics.
	Detail string
}

// Error implements error.
func (e *ArchiveError) Error() string {
	if e.Line > 0 {
		return fmt.Sprintf("archive: %s at line %d: %s", e.Reason, e.Line, e.Detail)
	}
	return fmt.Sprintf("archive: %s: %s", e.Reason, e.Detail)
}

// Header is the first line: the format tag, the writing tool, the run's
// identity, and the full serializable configuration that produced it.
type Header struct {
	Format  string `json:"format"`
	Version int    `json:"version"`
	Tool    string `json:"tool"`
	// Scenario is the registry name of an archived scenario run, empty for
	// ad-hoc benchmark archives.
	Scenario string `json:"scenario,omitempty"`
	// Workload is the generated workload's display name.
	Workload string `json:"workload"`
	// Seed echoes Config.Seed for greppability.
	Seed int64 `json:"seed"`
	// Config is the behavioural run configuration; two archives with equal
	// Configs and Seeds should be byte-identical (the determinism
	// contract), which is what first-divergence bisection exploits.
	Config core.ScenarioConfig `json:"config"`
	// Digest is the scenario outcome digest of the archived run, empty
	// when the writer had no task list to fingerprint.
	Digest string `json:"digest,omitempty"`
	// Makespan is the run's simulated duration.
	Makespan sim.Time `json:"makespan"`
}

// Footer closes the archive: expected line counts plus the digest echoed
// from the header, so truncation is always detectable.
type Footer struct {
	Snapshots int    `json:"snapshots"`
	Events    int    `json:"events"`
	Digest    string `json:"digest,omitempty"`
}

// obsInfo is the snapshot stream's envelope: RunObs minus the snapshots,
// which follow as their own lines.
type obsInfo struct {
	Meta       obs.StreamMeta `json:"meta"`
	Cadence    sim.Time       `json:"cadence"`
	Boundaries int            `json:"boundaries"`
	Stride     int            `json:"stride"`
}

// Archive is one parsed (or buildable) run archive.
type Archive struct {
	Header Header
	// Summary is the unified run summary: headline numbers, scheduler
	// counters (wall nanos zeroed), waste roll-up, serving accounting, and
	// health findings.
	Summary *core.RunSummary
	// Sched is the matching loop's work counters. ElapsedNanos is zero
	// unless the archive was written with KeepWall (which trades byte-
	// determinism for wall-clock visibility).
	Sched *wq.SchedStats
	// Obs is the retained snapshot ring plus the exact final snapshot;
	// nil when the archived run had no observability plane attached.
	Obs *obs.RunObs
	// Profiles are the telemetry layer's per-category usage profiles.
	Profiles []*tseries.ProfileSummary
	// Bottlenecks are the trace subsystem's per-category time buckets and
	// Phases the critical path's per-phase shares — the attribution inputs
	// the diff engine consults when a metric regresses.
	Bottlenecks []trace.Bucket
	Phases      []trace.PhaseShare
	// Events is the flat, time-ordered scheduler event stream, present
	// only when the archive was written with Events — the substrate of
	// first-divergence bisection.
	Events []wq.Event
}

// archiveLine is the per-line envelope: exactly one payload field per Kind.
type archiveLine struct {
	Kind       string                  `json:"kind"`
	Header     *Header                 `json:"header,omitempty"`
	Summary    *core.RunSummary        `json:"summary,omitempty"`
	Sched      *wq.SchedStats          `json:"sched,omitempty"`
	Obs        *obsInfo                `json:"obs,omitempty"`
	Snapshot   *obs.Snapshot           `json:"snapshot,omitempty"`
	Profile    *tseries.ProfileSummary `json:"profile,omitempty"`
	Bottleneck *trace.Bucket           `json:"bottleneck,omitempty"`
	Phase      *trace.PhaseShare       `json:"phase,omitempty"`
	Event      *wq.Event               `json:"event,omitempty"`
	Footer     *Footer                 `json:"footer,omitempty"`
}

// BuildOptions parameterize Build.
type BuildOptions struct {
	// Scenario names the archived scenario run (empty for ad-hoc runs).
	Scenario string
	// Digest is the run's outcome digest (scenario.OutcomeDigest).
	Digest string
	// Events includes the flat scheduler event stream, enabling
	// first-divergence bisection at the cost of archive size.
	Events bool
	// KeepWall preserves SchedStats.ElapsedNanos. Off by default: wall
	// nanos are hardware noise and would break the byte-determinism of
	// same-seed archives.
	KeepWall bool
}

// Build assembles an archive from a finished run. The outcome's trace
// (Outcome.Trace, attached via RunConfig.Trace) supplies the bottleneck
// buckets, critical-path phases, and — with opt.Events — the event stream;
// all three sections are simply absent on untraced runs.
func Build(out *core.Outcome, cfg core.ScenarioConfig, opt BuildOptions) *Archive {
	a := &Archive{
		Header: Header{
			Format: Format, Version: SchemaVersion, Tool: ToolVersion,
			Scenario: opt.Scenario, Workload: out.Workload,
			Seed: cfg.Seed, Config: cfg,
			Digest: opt.Digest, Makespan: out.Makespan,
		},
		Summary: out.Summary(),
		Obs:     out.Obs,
	}
	if out.Sched != nil {
		sched := *out.Sched
		if !opt.KeepWall {
			sched.ElapsedNanos = 0
		}
		a.Sched = &sched
	}
	if out.Telemetry != nil {
		a.Profiles = out.Telemetry.Profiles
	}
	if out.Trace != nil {
		st := out.Trace.Store()
		a.Bottlenecks = st.Bottlenecks(false)
		if cp := st.CriticalPath(); cp != nil {
			a.Phases = cp.Phases
		}
		if opt.Events {
			a.Events = out.Trace.Events()
		}
	}
	return a
}

// Write serializes the archive as JSONL. Output is byte-deterministic for
// identical archives.
func Write(a *Archive) ([]byte, error) {
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	emit := func(l archiveLine) error { return enc.Encode(l) }

	hdr := a.Header
	if hdr.Format == "" {
		hdr.Format = Format
	}
	if hdr.Version == 0 {
		hdr.Version = SchemaVersion
	}
	if err := emit(archiveLine{Kind: "header", Header: &hdr}); err != nil {
		return nil, err
	}
	if a.Summary != nil {
		if err := emit(archiveLine{Kind: "summary", Summary: a.Summary}); err != nil {
			return nil, err
		}
	}
	if a.Sched != nil {
		if err := emit(archiveLine{Kind: "sched", Sched: a.Sched}); err != nil {
			return nil, err
		}
	}
	snapshots := 0
	if a.Obs != nil {
		if err := emit(archiveLine{Kind: "obs", Obs: &obsInfo{
			Meta: a.Obs.Meta, Cadence: a.Obs.Cadence,
			Boundaries: a.Obs.Boundaries, Stride: a.Obs.Stride,
		}}); err != nil {
			return nil, err
		}
		for _, s := range a.Obs.Snapshots {
			if err := emit(archiveLine{Kind: "snapshot", Snapshot: s}); err != nil {
				return nil, err
			}
			snapshots++
		}
		if a.Obs.Final != nil {
			if err := emit(archiveLine{Kind: "final", Snapshot: a.Obs.Final}); err != nil {
				return nil, err
			}
		}
	}
	for _, p := range a.Profiles {
		if err := emit(archiveLine{Kind: "profile", Profile: p}); err != nil {
			return nil, err
		}
	}
	for i := range a.Bottlenecks {
		if err := emit(archiveLine{Kind: "bottleneck", Bottleneck: &a.Bottlenecks[i]}); err != nil {
			return nil, err
		}
	}
	for i := range a.Phases {
		if err := emit(archiveLine{Kind: "phase", Phase: &a.Phases[i]}); err != nil {
			return nil, err
		}
	}
	for i := range a.Events {
		if err := emit(archiveLine{Kind: "event", Event: &a.Events[i]}); err != nil {
			return nil, err
		}
	}
	if err := emit(archiveLine{Kind: "footer", Footer: &Footer{
		Snapshots: snapshots, Events: len(a.Events), Digest: hdr.Digest,
	}}); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// Read parses and validates an archive; every failure is a typed
// *ArchiveError.
func Read(data []byte) (*Archive, error) {
	if len(bytes.TrimSpace(data)) == 0 {
		return nil, &ArchiveError{Reason: BadFormat, Detail: "empty file"}
	}
	a := &Archive{}
	var oi *obsInfo
	var snaps []*obs.Snapshot
	var final *obs.Snapshot
	var footer *Footer
	sawHeader := false

	sc := bufio.NewScanner(bytes.NewReader(data))
	sc.Buffer(make([]byte, 0, 1<<20), 1<<26)
	n := 0
	for sc.Scan() {
		line := bytes.TrimSpace(sc.Bytes())
		n++
		if len(line) == 0 {
			continue
		}
		var l archiveLine
		if err := json.Unmarshal(line, &l); err != nil {
			if !sawHeader {
				return nil, &ArchiveError{Reason: BadFormat, Line: n, Detail: "not JSONL: " + err.Error()}
			}
			return nil, &ArchiveError{Reason: Corrupt, Line: n, Detail: err.Error()}
		}
		if !sawHeader {
			if l.Kind != "header" || l.Header == nil {
				return nil, &ArchiveError{Reason: BadFormat, Line: n, Detail: "first line is not an archive header"}
			}
			h := l.Header
			if h.Format != Format {
				return nil, &ArchiveError{Reason: BadFormat, Line: n,
					Detail: fmt.Sprintf("format %q, want %q", h.Format, Format)}
			}
			if h.Version > SchemaVersion || h.Version < 1 {
				return nil, &ArchiveError{Reason: BadVersion, Line: n,
					Detail: fmt.Sprintf("archive version %d, reader supports <= %d", h.Version, SchemaVersion)}
			}
			a.Header = *h
			sawHeader = true
			continue
		}
		if footer != nil {
			return nil, &ArchiveError{Reason: Corrupt, Line: n, Detail: "content after footer"}
		}
		switch l.Kind {
		case "summary":
			if l.Summary == nil {
				return nil, &ArchiveError{Reason: Corrupt, Line: n, Detail: "summary line without payload"}
			}
			a.Summary = l.Summary
		case "sched":
			if l.Sched == nil {
				return nil, &ArchiveError{Reason: Corrupt, Line: n, Detail: "sched line without payload"}
			}
			a.Sched = l.Sched
		case "obs":
			if l.Obs == nil {
				return nil, &ArchiveError{Reason: Corrupt, Line: n, Detail: "obs line without payload"}
			}
			oi = l.Obs
		case "snapshot":
			if l.Snapshot == nil {
				return nil, &ArchiveError{Reason: Corrupt, Line: n, Detail: "snapshot line without payload"}
			}
			snaps = append(snaps, l.Snapshot)
		case "final":
			if l.Snapshot == nil {
				return nil, &ArchiveError{Reason: Corrupt, Line: n, Detail: "final line without snapshot payload"}
			}
			final = l.Snapshot
		case "profile":
			if l.Profile == nil {
				return nil, &ArchiveError{Reason: Corrupt, Line: n, Detail: "profile line without payload"}
			}
			a.Profiles = append(a.Profiles, l.Profile)
		case "bottleneck":
			if l.Bottleneck == nil {
				return nil, &ArchiveError{Reason: Corrupt, Line: n, Detail: "bottleneck line without payload"}
			}
			a.Bottlenecks = append(a.Bottlenecks, *l.Bottleneck)
		case "phase":
			if l.Phase == nil {
				return nil, &ArchiveError{Reason: Corrupt, Line: n, Detail: "phase line without payload"}
			}
			a.Phases = append(a.Phases, *l.Phase)
		case "event":
			if l.Event == nil {
				return nil, &ArchiveError{Reason: Corrupt, Line: n, Detail: "event line without payload"}
			}
			a.Events = append(a.Events, *l.Event)
		case "footer":
			if l.Footer == nil {
				return nil, &ArchiveError{Reason: Corrupt, Line: n, Detail: "footer line without payload"}
			}
			footer = l.Footer
		default:
			// Unknown kinds from same-or-older versions are corruption; a
			// newer writer would have bumped the version and been refused
			// above.
			return nil, &ArchiveError{Reason: Corrupt, Line: n, Detail: "unknown line kind " + l.Kind}
		}
	}
	if err := sc.Err(); err != nil {
		return nil, &ArchiveError{Reason: Corrupt, Detail: err.Error()}
	}
	if footer == nil {
		return nil, &ArchiveError{Reason: Corrupt, Detail: "missing footer (truncated archive)"}
	}
	if len(snaps) != footer.Snapshots {
		return nil, &ArchiveError{Reason: Corrupt,
			Detail: fmt.Sprintf("%d snapshot lines, footer says %d", len(snaps), footer.Snapshots)}
	}
	if len(a.Events) != footer.Events {
		return nil, &ArchiveError{Reason: Corrupt,
			Detail: fmt.Sprintf("%d event lines, footer says %d", len(a.Events), footer.Events)}
	}
	if footer.Digest != a.Header.Digest {
		return nil, &ArchiveError{Reason: Corrupt,
			Detail: fmt.Sprintf("footer digest %q != header digest %q", footer.Digest, a.Header.Digest)}
	}
	if a.Summary == nil {
		return nil, &ArchiveError{Reason: Corrupt, Detail: "archive has no summary line"}
	}
	if oi != nil {
		a.Obs = &obs.RunObs{
			Meta: oi.Meta, Cadence: oi.Cadence,
			Boundaries: oi.Boundaries, Stride: oi.Stride,
			Snapshots: snaps, Final: final,
		}
	} else if len(snaps) > 0 || final != nil {
		return nil, &ArchiveError{Reason: Corrupt, Detail: "snapshot lines without an obs line"}
	}
	return a, nil
}
