package runarchive_test

import (
	"bytes"
	"errors"
	"strings"
	"testing"

	"lfm/internal/core"
	"lfm/internal/obs"
	"lfm/internal/runarchive"
	"lfm/internal/sim"
	"lfm/internal/workloads"
	"lfm/internal/wq"
)

// archiveRun executes a small traced+observed run and builds its archive.
func archiveRun(t *testing.T, seed int64, events bool) *runarchive.Archive {
	t.Helper()
	cfg := core.ScenarioConfig{Workers: 6, WorkerCores: 4, Seed: seed}
	w := workloads.HEP(sim.NewRNG(seed), 40)
	tr := &wq.Trace{}
	out, err := cfg.RunScenario(w, func(rc *core.RunConfig) {
		rc.Trace = tr
		rc.Obs = &obs.Config{Cadence: 5 * sim.Second, RingCap: 32}
	})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	return runarchive.Build(out, cfg, runarchive.BuildOptions{
		Scenario: "test-run", Digest: "sha256:feed", Events: events,
	})
}

func TestArchiveRoundTrip(t *testing.T) {
	a := archiveRun(t, 11, true)
	data, err := runarchive.Write(a)
	if err != nil {
		t.Fatalf("write: %v", err)
	}
	got, err := runarchive.Read(data)
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	if got.Header != a.Header {
		t.Errorf("header changed: %+v vs %+v", got.Header, a.Header)
	}
	if got.Summary == nil || got.Summary.Makespan != a.Summary.Makespan {
		t.Errorf("summary lost in round trip")
	}
	if got.Sched == nil || got.Sched.Passes != a.Sched.Passes {
		t.Errorf("sched stats lost in round trip")
	}
	if got.Obs == nil || len(got.Obs.Snapshots) != len(a.Obs.Snapshots) {
		t.Fatalf("obs snapshots: got %d, want %d", len(got.Obs.Snapshots), len(a.Obs.Snapshots))
	}
	if got.Obs.Final == nil || got.Obs.Final.At != a.Obs.Final.At {
		t.Errorf("final snapshot lost in round trip")
	}
	if len(got.Bottlenecks) != len(a.Bottlenecks) || len(got.Phases) != len(a.Phases) {
		t.Errorf("attribution sections lost: %d/%d buckets, %d/%d phases",
			len(got.Bottlenecks), len(a.Bottlenecks), len(got.Phases), len(a.Phases))
	}
	if len(got.Events) != len(a.Events) || len(got.Events) == 0 {
		t.Fatalf("events: got %d, want %d (nonzero)", len(got.Events), len(a.Events))
	}
	if got.Events[0] != a.Events[0] {
		t.Errorf("first event changed: %+v vs %+v", got.Events[0], a.Events[0])
	}
	// The re-serialization of the parsed archive must be byte-identical.
	again, err := runarchive.Write(got)
	if err != nil {
		t.Fatalf("rewrite: %v", err)
	}
	if !bytes.Equal(data, again) {
		t.Errorf("write(read(x)) differs from x")
	}
}

func TestArchiveByteDeterminism(t *testing.T) {
	a := archiveRun(t, 23, true)
	b := archiveRun(t, 23, true)
	da, err := runarchive.Write(a)
	if err != nil {
		t.Fatalf("write a: %v", err)
	}
	db, err := runarchive.Write(b)
	if err != nil {
		t.Fatalf("write b: %v", err)
	}
	if !bytes.Equal(da, db) {
		t.Fatalf("same-seed archives differ (%d vs %d bytes)", len(da), len(db))
	}
	// A different seed must differ (the digest is seed-independent here,
	// but the summary and streams are not).
	dc, err := runarchive.Write(archiveRun(t, 24, true))
	if err != nil {
		t.Fatalf("write c: %v", err)
	}
	if bytes.Equal(da, dc) {
		t.Fatalf("different-seed archives are byte-identical")
	}
}

// wantArchiveError asserts err is an *ArchiveError with the given reason.
func wantArchiveError(t *testing.T, err error, reason string) {
	t.Helper()
	var ae *runarchive.ArchiveError
	if !errors.As(err, &ae) {
		t.Fatalf("got %v, want *ArchiveError", err)
	}
	if ae.Reason != reason {
		t.Fatalf("reason %q, want %q (err: %v)", ae.Reason, reason, err)
	}
}

func TestArchiveReadErrors(t *testing.T) {
	a := archiveRun(t, 31, false)
	data, err := runarchive.Write(a)
	if err != nil {
		t.Fatalf("write: %v", err)
	}
	lines := strings.Split(strings.TrimSuffix(string(data), "\n"), "\n")

	t.Run("empty", func(t *testing.T) {
		_, err := runarchive.Read(nil)
		wantArchiveError(t, err, runarchive.BadFormat)
	})
	t.Run("not-jsonl", func(t *testing.T) {
		_, err := runarchive.Read([]byte("definitely not json\n"))
		wantArchiveError(t, err, runarchive.BadFormat)
	})
	t.Run("wrong-format-tag", func(t *testing.T) {
		_, err := runarchive.Read([]byte(`{"kind":"header","header":{"format":"something-else","version":1}}` + "\n"))
		wantArchiveError(t, err, runarchive.BadFormat)
	})
	t.Run("newer-version", func(t *testing.T) {
		_, err := runarchive.Read([]byte(`{"kind":"header","header":{"format":"lfm-run-archive","version":99}}` + "\n"))
		wantArchiveError(t, err, runarchive.BadVersion)
	})
	t.Run("truncated", func(t *testing.T) {
		_, err := runarchive.Read([]byte(strings.Join(lines[:len(lines)-1], "\n") + "\n"))
		wantArchiveError(t, err, runarchive.Corrupt)
	})
	t.Run("snapshot-count-mismatch", func(t *testing.T) {
		// Drop one snapshot line but keep the footer.
		var kept []string
		dropped := false
		for _, l := range lines {
			if !dropped && strings.HasPrefix(l, `{"kind":"snapshot"`) {
				dropped = true
				continue
			}
			kept = append(kept, l)
		}
		if !dropped {
			t.Fatal("no snapshot line to drop")
		}
		_, err := runarchive.Read([]byte(strings.Join(kept, "\n") + "\n"))
		wantArchiveError(t, err, runarchive.Corrupt)
	})
	t.Run("content-after-footer", func(t *testing.T) {
		_, err := runarchive.Read([]byte(string(data) + lines[1] + "\n"))
		wantArchiveError(t, err, runarchive.Corrupt)
	})
	t.Run("unknown-kind", func(t *testing.T) {
		bad := lines[0] + "\n" + `{"kind":"mystery"}` + "\n" + strings.Join(lines[1:], "\n") + "\n"
		_, err := runarchive.Read([]byte(bad))
		wantArchiveError(t, err, runarchive.Corrupt)
	})
}

func TestArchiveWallNanosZeroed(t *testing.T) {
	a := archiveRun(t, 41, false)
	if a.Sched == nil {
		t.Fatal("no sched stats")
	}
	if a.Sched.ElapsedNanos != 0 {
		t.Errorf("ElapsedNanos = %d, want 0 (hardware noise must not reach archives)", a.Sched.ElapsedNanos)
	}
}
