package diffobs

import (
	"fmt"
	"sort"

	"lfm/internal/core"
	"lfm/internal/wq"
)

// Perturbations are named RunConfig mutations the gate uses for its
// self-test: `lfmdiff gate -perturb NAME` runs the canned scenarios with
// the mutation applied and must *fail* against the committed baselines —
// proving the gate catches a seeded regression end to end. They are the
// "behaviour-changing code edit" stand-in that needs no code edit.
var perturbations = map[string]func(*core.RunConfig){
	// workers-halved cuts the pool in half: makespan, queue depth, and
	// latency quantiles all regress.
	"workers-halved": func(cfg *core.RunConfig) {
		if cfg.Workers > 1 {
			cfg.Workers /= 2
		}
	},
	// matcher-scan swaps the indexed matcher for the O(queue × workers)
	// linear scan. Placements — and thus the outcome digest — stay
	// identical; only the scheduler work counters (sched_candidates)
	// regress. Exercises the counter-only gate path.
	"matcher-scan": func(cfg *core.RunConfig) {
		cfg.Matcher = wq.MatcherScan
	},
}

// Perturbation resolves a named gate self-test mutation.
func Perturbation(name string) (func(*core.RunConfig), error) {
	fn, ok := perturbations[name]
	if !ok {
		return nil, fmt.Errorf("diffobs: unknown perturbation %q (have %v)", name, PerturbationNames())
	}
	return fn, nil
}

// PerturbationNames lists the registered perturbations, sorted.
func PerturbationNames() []string {
	names := make([]string, 0, len(perturbations))
	for n := range perturbations {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
