// Package diffobs compares two run archives: it aligns their snapshot
// streams on the sim clock, extracts a flat metric vector from each side,
// classifies every delta as improved/regressed/neutral against configurable
// absolute+relative noise thresholds, and attributes regressions by diffing
// critical-path bottleneck buckets and health findings. Because every run
// is byte-deterministic for a seed, a non-neutral delta between same-seed
// runs is a real behaviour change, never sampling noise — the thresholds
// exist to absorb *intended* small shifts (a tuning constant, an extra
// bookkeeping pass), not statistical variance.
package diffobs

import (
	"encoding/json"
	"fmt"
	"math"
	"sort"
	"strings"

	"lfm/internal/obs"
	"lfm/internal/runarchive"
	"lfm/internal/sim"
	"lfm/internal/trace"
)

// ReportVersion is the DiffReport schema version.
const ReportVersion = 1

// Direction says which way a metric should move.
const (
	// LowerBetter marks metrics where a negative delta is an improvement
	// (latencies, queue depth, waste, failures).
	LowerBetter = "lower"
	// HigherBetter marks metrics where a positive delta is an improvement
	// (utilization, packing efficiency, accepted fraction).
	HigherBetter = "higher"
)

// Classification values for MetricDelta.Class.
const (
	ClassImproved  = "improved"
	ClassRegressed = "regressed"
	ClassNeutral   = "neutral"
)

// Thresholds is the noise model: a delta is neutral when its absolute
// magnitude is within the metric's absolute threshold OR its relative
// magnitude (|delta| / |base|) is within Rel. Either gate suffices — the
// absolute gate absorbs jitter on tiny bases (a 0.2s makespan shift on a
// 3s run is 7% but meaningless), the relative gate absorbs proportional
// drift on huge counters.
type Thresholds struct {
	// Rel is the relative noise band (fraction of the base value).
	Rel float64 `json:"rel"`
	// Abs maps metric names to absolute noise bands. Per-category metrics
	// ("sched_p99[hep-reco]") fall back to their base name ("sched_p99"),
	// then to DefaultAbs.
	Abs map[string]float64 `json:"abs,omitempty"`
	// DefaultAbs applies when a metric has no Abs entry.
	DefaultAbs float64 `json:"default_abs"`
}

// DefaultThresholds returns the gate's stock noise model: 5% relative,
// with absolute bands sized per metric family (seconds for latencies,
// fractions for ratios, a ±1 band for small counters).
func DefaultThresholds() *Thresholds {
	return &Thresholds{
		Rel:        0.05,
		DefaultAbs: 1.5,
		Abs: map[string]float64{
			"makespan_s":            1.0,
			"sched_p50":             0.25,
			"sched_p99":             0.5,
			"e2e_p50":               1.0,
			"e2e_p99":               2.0,
			"utilization":           0.02,
			"effective_utilization": 0.02,
			"retry_fraction":        0.02,
			"waste_frac":            0.02,
			"mem_waste_frac":        0.02,
			"packing_efficiency":    0.02,
			"accept_fraction":       0.02,
			"utilization_mean":      0.02,
			"queue_depth_mean":      2,
			"queue_depth_peak":      4,
			"failed":                0.5,
			"lost_tasks":            0.5,
			// Scheduler work counters are deterministic but large; give
			// them room so incidental bookkeeping changes stay neutral.
			"sched_rounds":     10,
			"sched_tasks":      50,
			"sched_candidates": 200,
			"sched_wakes":      50,
			// Wall time is hardware noise (archives zero it unless
			// KeepWall); when kept, only gross slowdowns should flag.
			"sched_wall_ms": 100,
		},
	}
}

// absFor resolves the absolute band for a metric name, stripping a
// "[category]" suffix before falling back to DefaultAbs.
func (t *Thresholds) absFor(name string) float64 {
	if v, ok := t.Abs[name]; ok {
		return v
	}
	if i := strings.IndexByte(name, '['); i > 0 {
		if v, ok := t.Abs[name[:i]]; ok {
			return v
		}
	}
	return t.DefaultAbs
}

// Classify labels a delta for the named metric. direction is LowerBetter
// or HigherBetter.
func (t *Thresholds) Classify(name, direction string, base, cand float64) string {
	delta := cand - base
	if delta == 0 {
		return ClassNeutral
	}
	if math.Abs(delta) <= t.absFor(name) {
		return ClassNeutral
	}
	if base != 0 && math.Abs(delta)/math.Abs(base) <= t.Rel {
		return ClassNeutral
	}
	worse := delta > 0
	if direction == HigherBetter {
		worse = !worse
	}
	if worse {
		return ClassRegressed
	}
	return ClassImproved
}

// MetricDelta is one compared metric.
type MetricDelta struct {
	Name      string  `json:"name"`
	Unit      string  `json:"unit,omitempty"`
	Direction string  `json:"direction"`
	Base      float64 `json:"base"`
	Cand      float64 `json:"cand"`
	Delta     float64 `json:"delta"`
	// Rel is Delta/|Base| (0 when the base is 0).
	Rel   float64 `json:"rel,omitempty"`
	Class string  `json:"class"`
}

// RunRef identifies one side of a diff.
type RunRef struct {
	Scenario string   `json:"scenario,omitempty"`
	Workload string   `json:"workload"`
	Strategy string   `json:"strategy,omitempty"`
	Seed     int64    `json:"seed"`
	Digest   string   `json:"digest,omitempty"`
	Tool     string   `json:"tool,omitempty"`
	Makespan sim.Time `json:"makespan"`
}

// BucketDelta is the per-group critical-path time shift (candidate minus
// base, seconds) across the trace subsystem's bottleneck buckets.
type BucketDelta struct {
	Group   string  `json:"group"`
	DepWait float64 `json:"dep_wait,omitempty"`
	Queue   float64 `json:"queue,omitempty"`
	Stage   float64 `json:"stage,omitempty"`
	Exec    float64 `json:"exec,omitempty"`
	Output  float64 `json:"output,omitempty"`
	Waste   float64 `json:"waste,omitempty"`
	// Total is the sum of the above — the group's net contribution to the
	// regression, used for ordering.
	Total float64 `json:"total"`
}

// PhaseDelta is the shift in one critical-path phase.
type PhaseDelta struct {
	Kind  string  `json:"kind"`
	Base  float64 `json:"base"`
	Cand  float64 `json:"cand"`
	Delta float64 `json:"delta"`
}

// Attribution explains where a regression lives: which bottleneck buckets
// grew, how the makespan's critical-path phases shifted, and which health
// findings appeared or disappeared.
type Attribution struct {
	Buckets         []BucketDelta `json:"buckets,omitempty"`
	Phases          []PhaseDelta  `json:"phases,omitempty"`
	FindingsAdded   []string      `json:"findings_added,omitempty"`
	FindingsRemoved []string      `json:"findings_removed,omitempty"`
}

// DiffReport is the structured comparison of two archives.
type DiffReport struct {
	SchemaVersion int    `json:"schema_version"`
	Base          RunRef `json:"base"`
	Cand          RunRef `json:"cand"`
	// SameConfig reports byte-equal serialized ScenarioConfigs; when true
	// and DigestMatch is false, the runs *should* have been identical and
	// Bisect can find the first divergent event.
	SameConfig  bool          `json:"same_config"`
	DigestMatch bool          `json:"digest_match"`
	Metrics     []MetricDelta `json:"metrics"`
	Improved    int           `json:"improved"`
	Regressed   int           `json:"regressed"`
	Neutral     int           `json:"neutral"`
	Attribution *Attribution  `json:"attribution,omitempty"`
	// Notes records metrics present on only one side (subsystem enabled
	// there only) — dropped from the comparison, never silently.
	Notes []string `json:"notes,omitempty"`
}

// Regressions returns the regressed deltas, report order.
func (r *DiffReport) Regressions() []MetricDelta {
	var out []MetricDelta
	for _, m := range r.Metrics {
		if m.Class == ClassRegressed {
			out = append(out, m)
		}
	}
	return out
}

// AlignedPoint is one instant on the common resampled grid with each
// side's latest snapshot at or before it (step-function semantics).
type AlignedPoint struct {
	At   sim.Time
	Base *obs.Snapshot
	Cand *obs.Snapshot
}

// effectivePeriod is the spacing of a run's retained snapshots: cadence ×
// final stride (stride doubling drops every other snapshot, so survivors
// sit on multiples of the doubled stride).
func effectivePeriod(ro *obs.RunObs) sim.Time {
	stride := ro.Stride
	if stride < 1 {
		stride = 1
	}
	return ro.Cadence * sim.Time(stride)
}

// Align resamples two snapshot streams onto their common grid: the coarser
// of the two effective periods, from 0 through the earlier of the two
// final timestamps. Each point carries the latest retained snapshot at or
// before the grid instant from each side. Snapshot 0 (seq 0, t=0) is
// always retained — 0 is a multiple of every stride — so neither side is
// ever missing. Returns nil when either stream kept no snapshots.
func Align(a, b *obs.RunObs) []AlignedPoint {
	if a == nil || b == nil || len(a.Snapshots) == 0 || len(b.Snapshots) == 0 {
		return nil
	}
	period := effectivePeriod(a)
	if p := effectivePeriod(b); p > period {
		period = p
	}
	if period <= 0 {
		return nil
	}
	end := a.Final.At
	if b.Final.At < end {
		end = b.Final.At
	}
	var out []AlignedPoint
	ia, ib := 0, 0
	for t := sim.Time(0); t <= end; t += period {
		for ia+1 < len(a.Snapshots) && a.Snapshots[ia+1].At <= t {
			ia++
		}
		for ib+1 < len(b.Snapshots) && b.Snapshots[ib+1].At <= t {
			ib++
		}
		out = append(out, AlignedPoint{At: t, Base: a.Snapshots[ia], Cand: b.Snapshots[ib]})
	}
	return out
}

// metric is one extracted (name, value) sample with its display unit and
// preferred direction.
type metric struct {
	name, unit, direction string
	value                 float64
}

// metricsOf flattens one archive into the ordered metric vector. Optional
// subsystems contribute only when present; Diff drops (and notes)
// one-sided metrics.
func metricsOf(a *runarchive.Archive) []metric {
	s := a.Summary
	m := []metric{
		{"makespan_s", "s", LowerBetter, float64(a.Header.Makespan)},
		{"utilization", "frac", HigherBetter, s.Utilization},
		{"effective_utilization", "frac", HigherBetter, s.EffectiveUtilization},
		{"retry_fraction", "frac", LowerBetter, s.RetryFraction},
		{"failed", "count", LowerBetter, float64(s.Stats.Failed)},
		{"retries", "count", LowerBetter, float64(s.Stats.Retries)},
		{"lost_tasks", "count", LowerBetter, float64(s.Stats.LostTasks)},
	}
	if s.Waste != nil {
		m = append(m,
			metric{"waste_frac", "frac", LowerBetter, s.Waste.WasteFraction},
			metric{"mem_waste_frac", "frac", LowerBetter, s.Waste.MemWasteFraction},
			metric{"packing_efficiency", "frac", HigherBetter, s.Waste.PackingEfficiency},
		)
	}
	if s.Serving != nil {
		sv := s.Serving
		accept := 0.0
		if sv.Offered > 0 {
			accept = float64(sv.Accepted) / float64(sv.Offered)
		}
		m = append(m,
			metric{"shed", "count", LowerBetter, float64(sv.Shed)},
			metric{"rejected", "count", LowerBetter, float64(sv.Rejected)},
			metric{"throttled", "count", LowerBetter, float64(sv.Throttled)},
			metric{"backpressured", "count", LowerBetter, float64(sv.Backpressured)},
			metric{"accept_fraction", "frac", HigherBetter, accept},
			metric{"serving_e2e_p99", "s", LowerBetter, sv.E2E.P99},
		)
	}
	if a.Obs != nil && a.Obs.Final != nil {
		fin := a.Obs.Final
		m = append(m,
			metric{"sched_p50", "s", LowerBetter, fin.SchedLatency.P50},
			metric{"sched_p99", "s", LowerBetter, fin.SchedLatency.P99},
			metric{"e2e_p50", "s", LowerBetter, fin.E2ELatency.P50},
			metric{"e2e_p99", "s", LowerBetter, fin.E2ELatency.P99},
		)
		for _, c := range fin.Categories {
			m = append(m,
				metric{"sched_p99[" + c.Category + "]", "s", LowerBetter, c.Sched.P99},
				metric{"e2e_p99[" + c.Category + "]", "s", LowerBetter, c.E2E.P99},
			)
		}
	}
	if a.Sched != nil {
		m = append(m,
			metric{"sched_rounds", "count", LowerBetter, float64(a.Sched.Passes)},
			metric{"sched_tasks", "count", LowerBetter, float64(a.Sched.TasksExamined)},
			metric{"sched_candidates", "count", LowerBetter, float64(a.Sched.CandidatesExamined)},
			metric{"sched_wakes", "count", LowerBetter, float64(a.Sched.BlockedWakes)},
			metric{"sched_wall_ms", "ms", LowerBetter, float64(a.Sched.ElapsedNanos) / 1e6},
		)
	}
	return m
}

// streamMetrics computes the aligned-stream metrics for one side of an
// Align result. sel picks the snapshot (base or cand) from each point.
func streamMetrics(points []AlignedPoint, sel func(AlignedPoint) *obs.Snapshot) []metric {
	if len(points) == 0 {
		return nil
	}
	var qSum, uSum float64
	qPeak := 0
	for _, p := range points {
		s := sel(p)
		qSum += float64(s.QueueDepth)
		uSum += float64(s.Utilization)
		if s.QueueDepth > qPeak {
			qPeak = s.QueueDepth
		}
	}
	n := float64(len(points))
	return []metric{
		{"queue_depth_mean", "count", LowerBetter, qSum / n},
		{"queue_depth_peak", "count", LowerBetter, float64(qPeak)},
		{"utilization_mean", "frac", HigherBetter, uSum / n},
	}
}

// runRef builds the report's identity block for one archive.
func runRef(a *runarchive.Archive) RunRef {
	return RunRef{
		Scenario: a.Header.Scenario,
		Workload: a.Header.Workload,
		Strategy: a.Summary.Strategy,
		Seed:     a.Header.Seed,
		Digest:   a.Header.Digest,
		Tool:     a.Header.Tool,
		Makespan: a.Header.Makespan,
	}
}

// sameConfig reports whether the two headers carry byte-identical
// serialized scenario configs.
func sameConfig(a, b *runarchive.Archive) bool {
	ja, ea := json.Marshal(a.Header.Config)
	jb, eb := json.Marshal(b.Header.Config)
	return ea == nil && eb == nil && string(ja) == string(jb)
}

// Diff compares base against cand and classifies every shared metric.
// A nil thresholds uses DefaultThresholds. Attribution is attached
// whenever anything regressed and either side carries trace data.
func Diff(base, cand *runarchive.Archive, th *Thresholds) *DiffReport {
	if th == nil {
		th = DefaultThresholds()
	}
	r := &DiffReport{
		SchemaVersion: ReportVersion,
		Base:          runRef(base),
		Cand:          runRef(cand),
		SameConfig:    sameConfig(base, cand),
		DigestMatch: base.Header.Digest != "" &&
			base.Header.Digest == cand.Header.Digest,
	}
	mb := metricsOf(base)
	mc := metricsOf(cand)
	points := Align(base.Obs, cand.Obs)
	mb = append(mb, streamMetrics(points, func(p AlignedPoint) *obs.Snapshot { return p.Base })...)
	mc = append(mc, streamMetrics(points, func(p AlignedPoint) *obs.Snapshot { return p.Cand })...)
	candByName := make(map[string]metric, len(mc))
	for _, m := range mc {
		candByName[m.name] = m
	}
	seen := make(map[string]bool, len(mb))
	for _, b := range mb {
		seen[b.name] = true
		c, ok := candByName[b.name]
		if !ok {
			r.Notes = append(r.Notes, fmt.Sprintf("metric %s: base only (subsystem off in candidate)", b.name))
			continue
		}
		d := MetricDelta{
			Name: b.name, Unit: b.unit, Direction: b.direction,
			Base: b.value, Cand: c.value, Delta: c.value - b.value,
			Class: th.Classify(b.name, b.direction, b.value, c.value),
		}
		if b.value != 0 {
			d.Rel = d.Delta / math.Abs(b.value)
		}
		r.Metrics = append(r.Metrics, d)
		switch d.Class {
		case ClassImproved:
			r.Improved++
		case ClassRegressed:
			r.Regressed++
		default:
			r.Neutral++
		}
	}
	for _, c := range mc {
		if !seen[c.name] {
			r.Notes = append(r.Notes, fmt.Sprintf("metric %s: candidate only (subsystem off in base)", c.name))
		}
	}
	if r.Regressed > 0 {
		r.Attribution = attribute(base, cand)
	}
	return r
}

// attribute diffs the two sides' bottleneck buckets, critical-path phase
// shares, and health findings.
func attribute(base, cand *runarchive.Archive) *Attribution {
	at := &Attribution{}
	bb := bucketsByGroup(base.Bottlenecks)
	cb := bucketsByGroup(cand.Bottlenecks)
	for _, g := range unionKeys(bb, cb) {
		b, c := bb[g], cb[g]
		d := BucketDelta{
			Group:   g,
			DepWait: float64(c.DepWait - b.DepWait),
			Queue:   float64(c.Queue - b.Queue),
			Stage:   float64(c.Stage - b.Stage),
			Exec:    float64(c.Exec - b.Exec),
			Output:  float64(c.Output - b.Output),
			Waste:   float64(c.Waste - b.Waste),
		}
		d.Total = d.DepWait + d.Queue + d.Stage + d.Exec + d.Output + d.Waste
		if d.Total != 0 || d.Waste != 0 {
			at.Buckets = append(at.Buckets, d)
		}
	}
	sort.Slice(at.Buckets, func(i, j int) bool {
		ai, aj := math.Abs(at.Buckets[i].Total), math.Abs(at.Buckets[j].Total)
		if ai != aj {
			return ai > aj
		}
		return at.Buckets[i].Group < at.Buckets[j].Group
	})
	bp := phasesByKind(base.Phases)
	cp := phasesByKind(cand.Phases)
	for _, k := range unionKeysF(bp, cp) {
		b, c := bp[k], cp[k]
		if b == c {
			continue
		}
		at.Phases = append(at.Phases, PhaseDelta{Kind: k, Base: b, Cand: c, Delta: c - b})
	}
	sort.Slice(at.Phases, func(i, j int) bool {
		ai, aj := math.Abs(at.Phases[i].Delta), math.Abs(at.Phases[j].Delta)
		if ai != aj {
			return ai > aj
		}
		return at.Phases[i].Kind < at.Phases[j].Kind
	})
	at.FindingsAdded, at.FindingsRemoved = diffFindings(base, cand)
	if len(at.Buckets) == 0 && len(at.Phases) == 0 &&
		len(at.FindingsAdded) == 0 && len(at.FindingsRemoved) == 0 {
		return nil
	}
	return at
}

func bucketsByGroup(bs []trace.Bucket) map[string]trace.Bucket {
	m := make(map[string]trace.Bucket, len(bs))
	for _, b := range bs {
		m[b.Group] = b
	}
	return m
}

func phasesByKind(ps []trace.PhaseShare) map[string]float64 {
	m := make(map[string]float64, len(ps))
	for _, p := range ps {
		m[string(p.Kind)] = float64(p.Duration)
	}
	return m
}

func unionKeys(a, b map[string]trace.Bucket) []string {
	set := make(map[string]bool, len(a)+len(b))
	for k := range a {
		set[k] = true
	}
	for k := range b {
		set[k] = true
	}
	keys := make([]string, 0, len(set))
	for k := range set {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func unionKeysF(a, b map[string]float64) []string {
	set := make(map[string]bool, len(a)+len(b))
	for k := range a {
		set[k] = true
	}
	for k := range b {
		set[k] = true
	}
	keys := make([]string, 0, len(set))
	for k := range set {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// diffFindings compares health findings by "rule (severity)" identity —
// detail strings embed run-specific numbers and would never match.
func diffFindings(base, cand *runarchive.Archive) (added, removed []string) {
	keysOf := func(a *runarchive.Archive) map[string]bool {
		m := map[string]bool{}
		if a.Summary.Health == nil {
			return m
		}
		for _, f := range a.Summary.Health.Findings {
			m[fmt.Sprintf("%s (%s)", f.Rule, f.Severity)] = true
		}
		return m
	}
	bk, ck := keysOf(base), keysOf(cand)
	for k := range ck {
		if !bk[k] {
			added = append(added, k)
		}
	}
	for k := range bk {
		if !ck[k] {
			removed = append(removed, k)
		}
	}
	sort.Strings(added)
	sort.Strings(removed)
	return added, removed
}
