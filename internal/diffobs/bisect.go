package diffobs

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"math"
	"sort"

	"lfm/internal/wq"
)

// Divergence is the first point where two scheduler event streams differ.
type Divergence struct {
	// Index is the position of the first divergent event (0-based; both
	// streams agree on every event before it).
	Index int `json:"index"`
	// Base and Cand are each side's event at Index; one is nil when that
	// stream ended early (the shorter run is a strict prefix up to here).
	Base *wq.Event `json:"base,omitempty"`
	Cand *wq.Event `json:"cand,omitempty"`
}

// String renders the one-line culprit.
func (d *Divergence) String() string {
	switch {
	case d.Base == nil:
		return fmt.Sprintf("event %d: base stream ended; cand continues with %s", d.Index, eventLine(d.Cand))
	case d.Cand == nil:
		return fmt.Sprintf("event %d: cand stream ended; base continues with %s", d.Index, eventLine(d.Base))
	default:
		return fmt.Sprintf("event %d: base %s | cand %s", d.Index, eventLine(d.Base), eventLine(d.Cand))
	}
}

func eventLine(e *wq.Event) string {
	s := fmt.Sprintf("t=%s %s task=%d worker=%d", e.At.Duration(), e.Kind, e.Task, e.Worker)
	if e.Category != "" {
		s += " cat=" + e.Category
	}
	if e.Detail != "" {
		s += " (" + e.Detail + ")"
	}
	return s
}

// Bisect binary-searches two scheduler event streams to their first
// divergent event, or returns nil when one is a prefix of the other and
// both have equal length (i.e. the streams are identical).
//
// Determinism gives the streams the prefix property: two same-config runs
// proceed identically until the first divergent scheduling decision, after
// which everything downstream shifts. That makes "first index where the
// prefix hashes differ" monotone in the index, so after one O(n) pass
// building incremental SHA-256 prefix digests per stream, sort.Search
// finds the divergence in O(log n) digest comparisons. (A direct linear
// event-by-event scan would also work; the prefix-hash form is what a
// future archive format with chunked digests can bisect *without* both
// full streams in memory.)
func Bisect(a, b []wq.Event) *Divergence {
	min := len(a)
	if len(b) < min {
		min = len(b)
	}
	// prefix[i] is the digest of the first i events; prefix[0] is the
	// digest of the empty stream and always matches.
	pa := prefixDigests(a, min)
	pb := prefixDigests(b, min)
	i := sort.Search(min, func(i int) bool { return pa[i+1] != pb[i+1] })
	if i == min {
		// Every shared event matches: identical streams, or one is a
		// strict prefix of the other.
		if len(a) == len(b) {
			return nil
		}
		d := &Divergence{Index: min}
		if min < len(a) {
			d.Base = &a[min]
		}
		if min < len(b) {
			d.Cand = &b[min]
		}
		return d
	}
	return &Divergence{Index: i, Base: &a[i], Cand: &b[i]}
}

// prefixDigests returns n+1 digests; entry i covers the first i events.
func prefixDigests(events []wq.Event, n int) [][sha256.Size]byte {
	out := make([][sha256.Size]byte, n+1)
	h := sha256.New()
	for i := 0; i < n; i++ {
		hashEvent(h, &events[i])
		// Sum appends to a fresh slice without disturbing the running
		// state, so each prefix digest is O(1) on top of the stream walk.
		copy(out[i+1][:], h.Sum(nil))
	}
	return out
}

func hashEvent(h interface{ Write([]byte) (int, error) }, e *wq.Event) {
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], math.Float64bits(float64(e.At)))
	h.Write(buf[:])
	h.Write([]byte(e.Kind))
	binary.LittleEndian.PutUint64(buf[:], uint64(int64(e.Task)))
	h.Write(buf[:])
	h.Write([]byte(e.Category))
	binary.LittleEndian.PutUint64(buf[:], uint64(int64(e.Worker)))
	h.Write(buf[:])
	h.Write([]byte(e.Detail))
	h.Write([]byte{0})
}
