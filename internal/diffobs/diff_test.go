package diffobs_test

import (
	"strings"
	"testing"

	"lfm/internal/core"
	"lfm/internal/diffobs"
	"lfm/internal/obs"
	"lfm/internal/runarchive"
	"lfm/internal/sim"
	"lfm/internal/workloads"
	"lfm/internal/wq"
)

// buildArchive runs a small traced+observed HEP workload and archives it.
// customize mutates the materialized config — the stand-in for a
// behaviour-changing code edit.
func buildArchive(t *testing.T, seed int64, cadence sim.Time, ringCap int, customize func(*core.RunConfig)) *runarchive.Archive {
	t.Helper()
	cfg := core.ScenarioConfig{Workers: 8, WorkerCores: 4, Seed: seed}
	w := workloads.HEP(sim.NewRNG(seed), 60)
	tr := &wq.Trace{}
	out, err := cfg.RunScenario(w, func(rc *core.RunConfig) {
		rc.Trace = tr
		rc.Obs = &obs.Config{Cadence: cadence, RingCap: ringCap}
		if customize != nil {
			customize(rc)
		}
	})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	return runarchive.Build(out, cfg, runarchive.BuildOptions{Events: true})
}

func TestDiffIdenticalRunsAllNeutral(t *testing.T) {
	a := buildArchive(t, 7, 5*sim.Second, 32, nil)
	b := buildArchive(t, 7, 5*sim.Second, 32, nil)
	r := diffobs.Diff(a, b, nil)
	if !r.SameConfig {
		t.Errorf("SameConfig = false for identical configs")
	}
	if r.Regressed != 0 || r.Improved != 0 {
		for _, m := range r.Metrics {
			if m.Class != diffobs.ClassNeutral {
				t.Errorf("metric %s: %s (base %.4g cand %.4g)", m.Name, m.Class, m.Base, m.Cand)
			}
		}
		t.Fatalf("identical runs: improved=%d regressed=%d, want 0/0", r.Improved, r.Regressed)
	}
	if r.Neutral != len(r.Metrics) || r.Neutral == 0 {
		t.Fatalf("neutral=%d metrics=%d, want all (and nonzero)", r.Neutral, len(r.Metrics))
	}
	if r.Attribution != nil {
		t.Errorf("attribution attached to an all-neutral diff")
	}
}

func TestDiffPerturbedRunRegresses(t *testing.T) {
	base := buildArchive(t, 7, 5*sim.Second, 32, nil)
	perturb, err := diffobs.Perturbation("workers-halved")
	if err != nil {
		t.Fatal(err)
	}
	cand := buildArchive(t, 7, 5*sim.Second, 32, perturb)
	r := diffobs.Diff(base, cand, nil)
	if r.Regressed == 0 {
		t.Fatalf("halving the pool regressed nothing; metrics: %+v", r.Metrics)
	}
	names := map[string]bool{}
	for _, m := range r.Regressions() {
		names[m.Name] = true
		if m.Delta == 0 {
			t.Errorf("regressed metric %s has zero delta", m.Name)
		}
	}
	if !names["makespan_s"] {
		t.Errorf("makespan did not regress when the pool was halved; regressed: %v", names)
	}
	if r.Attribution == nil {
		t.Fatalf("no attribution on a regressed diff")
	}
	if len(r.Attribution.Buckets) == 0 && len(r.Attribution.Phases) == 0 {
		t.Errorf("attribution has neither bucket nor phase deltas")
	}
}

func TestDiffMatcherScanRegressesCountersOnly(t *testing.T) {
	base := buildArchive(t, 7, 5*sim.Second, 32, nil)
	perturb, err := diffobs.Perturbation("matcher-scan")
	if err != nil {
		t.Fatal(err)
	}
	cand := buildArchive(t, 7, 5*sim.Second, 32, perturb)
	r := diffobs.Diff(base, cand, nil)
	var regressed []string
	for _, m := range r.Regressions() {
		regressed = append(regressed, m.Name)
	}
	if len(regressed) == 0 {
		t.Fatalf("linear scan regressed nothing")
	}
	for _, n := range regressed {
		if !strings.HasPrefix(n, "sched_") {
			t.Errorf("matcher swap regressed non-counter metric %s (placements must be identical)", n)
		}
	}
	// Placements identical → makespan delta exactly zero.
	for _, m := range r.Metrics {
		if m.Name == "makespan_s" && m.Delta != 0 {
			t.Errorf("makespan shifted %.4g under a placement-identical matcher swap", m.Delta)
		}
	}
}

func TestAlignAcrossCadences(t *testing.T) {
	// Same run captured at 2s/large-ring and 8s/small-ring; alignment
	// must resample to the coarser effective grid and cover the span.
	a := buildArchive(t, 9, 2*sim.Second, 256, nil)
	b := buildArchive(t, 9, 8*sim.Second, 16, nil)
	pts := diffobs.Align(a.Obs, b.Obs)
	if len(pts) == 0 {
		t.Fatal("no aligned points")
	}
	coarse := a.Obs.Cadence * sim.Time(a.Obs.Stride)
	if p := b.Obs.Cadence * sim.Time(b.Obs.Stride); p > coarse {
		coarse = p
	}
	for i, p := range pts {
		if p.Base == nil || p.Cand == nil {
			t.Fatalf("point %d: nil side", i)
		}
		if want := sim.Time(i) * coarse; p.At != want {
			t.Errorf("point %d at %v, want %v", i, p.At, want)
		}
		if p.Base.At > p.At || p.Cand.At > p.At {
			t.Errorf("point %d: snapshot from the future (base %v cand %v at %v)",
				i, p.Base.At, p.Cand.At, p.At)
		}
		// Both sides observe the same run: cumulative counters at the
		// same resampled instant may differ only by snapshot staleness
		// within one grid period, and monotone counters never move
		// backwards relative to the coarser side.
		if p.Base.Completed < p.Cand.Completed && p.Base.At >= p.Cand.At {
			t.Errorf("point %d: later snapshot has fewer completions", i)
		}
	}
	// The diff of the two captures must not flag stream metrics: same
	// run, just different capture shapes.
	r := diffobs.Diff(a, b, nil)
	for _, m := range r.Regressions() {
		t.Errorf("same-run different-capture diff regressed %s (%.4g -> %.4g)", m.Name, m.Base, m.Cand)
	}
}

func TestThresholdClassify(t *testing.T) {
	th := diffobs.DefaultThresholds()
	cases := []struct {
		name, dir  string
		base, cand float64
		want       string
	}{
		{"makespan_s", diffobs.LowerBetter, 100, 100.5, diffobs.ClassNeutral},   // within abs
		{"makespan_s", diffobs.LowerBetter, 100, 104, diffobs.ClassNeutral},     // within rel
		{"makespan_s", diffobs.LowerBetter, 100, 120, diffobs.ClassRegressed},   // beyond both
		{"makespan_s", diffobs.LowerBetter, 100, 80, diffobs.ClassImproved},     // beyond both, down
		{"utilization", diffobs.HigherBetter, 0.5, 0.4, diffobs.ClassRegressed}, // higher-better drop
		{"utilization", diffobs.HigherBetter, 0.5, 0.6, diffobs.ClassImproved},
		{"utilization", diffobs.HigherBetter, 0.5, 0.51, diffobs.ClassNeutral},
		{"failed", diffobs.LowerBetter, 0, 1, diffobs.ClassRegressed}, // zero base: abs only
		{"failed", diffobs.LowerBetter, 0, 0, diffobs.ClassNeutral},
		// Per-category metric falls back to the base-name threshold.
		{"sched_p99[hep-reco]", diffobs.LowerBetter, 10, 10.4, diffobs.ClassNeutral},
		{"sched_p99[hep-reco]", diffobs.LowerBetter, 10, 13, diffobs.ClassRegressed},
	}
	for _, c := range cases {
		if got := th.Classify(c.name, c.dir, c.base, c.cand); got != c.want {
			t.Errorf("Classify(%s, %s, %g, %g) = %s, want %s", c.name, c.dir, c.base, c.cand, got, c.want)
		}
	}
}

func TestUnknownPerturbation(t *testing.T) {
	if _, err := diffobs.Perturbation("nope"); err == nil {
		t.Fatal("unknown perturbation accepted")
	}
	if names := diffobs.PerturbationNames(); len(names) < 2 {
		t.Fatalf("want >= 2 registered perturbations, got %v", names)
	}
}
