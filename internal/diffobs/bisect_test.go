package diffobs_test

import (
	"strings"
	"testing"

	"lfm/internal/diffobs"
	"lfm/internal/wq"
)

func TestBisectIdenticalStreams(t *testing.T) {
	a := buildArchive(t, 13, 0, 0, nil)
	b := buildArchive(t, 13, 0, 0, nil)
	if len(a.Events) == 0 {
		t.Fatal("no events captured")
	}
	if d := diffobs.Bisect(a.Events, b.Events); d != nil {
		t.Fatalf("identical streams diverge: %s", d)
	}
}

func TestBisectFindsTamperedEvent(t *testing.T) {
	a := buildArchive(t, 13, 0, 0, nil)
	events := make([]wq.Event, len(a.Events))
	copy(events, a.Events)
	// Tamper with one mid-stream event — the seeded stand-in for a
	// determinism break.
	idx := len(events) / 2
	events[idx].Worker++
	d := diffobs.Bisect(a.Events, events)
	if d == nil {
		t.Fatal("tampered stream reported identical")
	}
	if d.Index != idx {
		t.Fatalf("divergence at %d, want %d", d.Index, idx)
	}
	if d.Base == nil || d.Cand == nil {
		t.Fatalf("mid-stream divergence with a nil side: %+v", d)
	}
	if d.Base.Worker == d.Cand.Worker {
		t.Errorf("reported events do not differ: %s", d)
	}
	if s := d.String(); !strings.Contains(s, "task=") || !strings.Contains(s, "worker=") {
		t.Errorf("culprit line missing task/worker: %q", s)
	}
}

func TestBisectPrefixStreams(t *testing.T) {
	a := buildArchive(t, 13, 0, 0, nil)
	short := a.Events[:len(a.Events)-3]
	d := diffobs.Bisect(a.Events, short)
	if d == nil {
		t.Fatal("prefix stream reported identical")
	}
	if d.Index != len(short) {
		t.Fatalf("divergence at %d, want %d", d.Index, len(short))
	}
	if d.Cand != nil || d.Base == nil {
		t.Fatalf("want cand side nil (ended early), base set: %+v", d)
	}
	if !strings.Contains(d.String(), "ended") {
		t.Errorf("culprit line should say a stream ended: %q", d.String())
	}
	// Symmetric case.
	d = diffobs.Bisect(short, a.Events)
	if d == nil || d.Base != nil || d.Cand == nil {
		t.Fatalf("symmetric prefix case wrong: %+v", d)
	}
}

func TestBisectEmptyStreams(t *testing.T) {
	if d := diffobs.Bisect(nil, nil); d != nil {
		t.Fatalf("two empty streams diverge: %+v", d)
	}
	one := []wq.Event{{Kind: "submit", Task: 1, Worker: -1}}
	d := diffobs.Bisect(nil, one)
	if d == nil || d.Index != 0 || d.Base != nil || d.Cand == nil {
		t.Fatalf("empty-vs-one wrong: %+v", d)
	}
}

func TestBisectFirstEventDiffers(t *testing.T) {
	a := []wq.Event{{Kind: "submit", Task: 1, Worker: -1}, {Kind: "start", Task: 1, Worker: 0}}
	b := []wq.Event{{Kind: "submit", Task: 2, Worker: -1}, {Kind: "start", Task: 1, Worker: 0}}
	d := diffobs.Bisect(a, b)
	if d == nil || d.Index != 0 {
		t.Fatalf("want divergence at 0, got %+v", d)
	}
}
