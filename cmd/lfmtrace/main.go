// Command lfmtrace answers "why was my workflow slow?" from a saved span
// trace (lfmbench -trace-out run.trace.json, or TraceStore.WriteJSON from
// library code).
//
// Usage:
//
//	lfmtrace [-top N] [-perfetto FILE] TRACE
//
// It prints the run's critical path (the contiguous chain of task phases
// that determined the makespan) with a per-phase time breakdown, bottleneck
// tables by task category and by worker, and the top-N slowest spans.
// -perfetto additionally re-exports the trace as Chrome trace-event JSON for
// https://ui.perfetto.dev.
package main

import (
	"flag"
	"fmt"
	"os"
	"text/tabwriter"

	"lfm"
)

func main() {
	top := flag.Int("top", 10, "number of slowest spans to list")
	perfetto := flag.String("perfetto", "", "also write the trace as Chrome trace-event JSON to this file")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: lfmtrace [-top N] [-perfetto FILE] TRACE\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() != 1 {
		flag.Usage()
		os.Exit(2)
	}

	f, err := os.Open(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	st, err := lfm.ReadTrace(f)
	f.Close()
	if err != nil {
		fatal(err)
	}

	report(st, *top)

	if *perfetto != "" {
		out, err := os.Create(*perfetto)
		if err != nil {
			fatal(err)
		}
		if err := st.WritePerfetto(out); err != nil {
			out.Close()
			fatal(err)
		}
		if err := out.Close(); err != nil {
			fatal(err)
		}
		fmt.Printf("\nperfetto export written to %s (open at https://ui.perfetto.dev)\n", *perfetto)
	}
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "lfmtrace: %v\n", err)
	os.Exit(1)
}

func report(st *lfm.TraceStore, top int) {
	fmt.Printf("trace: %d spans, end of run at %.3fs\n", st.Len(), float64(st.EndTime()))

	cp := st.CriticalPath()
	if cp == nil {
		fmt.Println("no task spans recorded; nothing to analyze")
		return
	}
	fmt.Printf("\ncritical path: %.3fs, [%.3fs, %.3fs], %d steps across %d tasks\n",
		float64(cp.Total()), float64(cp.Start), float64(cp.End), len(cp.Steps), pathTasks(cp))
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "  phase\ttime\tshare")
	for _, p := range cp.Phases {
		fmt.Fprintf(w, "  %s\t%.3fs\t%.1f%%\n", p.Kind, float64(p.Duration), 100*p.Fraction)
	}
	w.Flush()
	fmt.Println("\npath steps:")
	w = tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "  task\tcategory\tphase\tstart\tduration\tworker")
	for _, sp := range cp.Steps {
		worker := "-"
		if sp.Worker >= 0 {
			worker = fmt.Sprintf("%d", sp.Worker)
		}
		fmt.Fprintf(w, "  %d\t%s\t%s\t%.3fs\t%.3fs\t%s\n",
			sp.Task, sp.Category, sp.Kind, float64(sp.Start), float64(sp.Duration(cp.End)), worker)
	}
	w.Flush()

	buckets(st, false, "bottlenecks by category:")
	buckets(st, true, "bottlenecks by worker:")
	chaosSection(st, cp)

	slow := st.Slowest(top)
	if len(slow) > 0 {
		fmt.Printf("\ntop %d slowest spans:\n", len(slow))
		w = tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
		fmt.Fprintln(w, "  kind\ttask\tcategory\tstart\tduration\toutcome\tdetail")
		end := st.EndTime()
		for _, sp := range slow {
			fmt.Fprintf(w, "  %s\t%d\t%s\t%.3fs\t%.3fs\t%s\t%s\n",
				sp.Kind, sp.Task, sp.Category, float64(sp.Start), float64(sp.Duration(end)), sp.Outcome, sp.Detail)
		}
		w.Flush()
	}
}

// chaosSection lists injected faults and failure-detection events, flagging
// those whose window overlaps the critical path — the faults that plausibly
// cost makespan.
func chaosSection(st *lfm.TraceStore, cp *lfm.TraceCriticalPath) {
	var evs []lfm.TraceSpan
	for _, sp := range st.Spans() {
		switch sp.Kind {
		case lfm.TraceKindChaos, lfm.TraceKindSuspect, lfm.TraceKindQuarantine,
			lfm.TraceKindKill, lfm.TraceKindAnomaly:
			evs = append(evs, sp)
		}
	}
	if len(evs) == 0 {
		return
	}
	end := st.EndTime()
	fmt.Printf("\nfailure events (%d):\n", len(evs))
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "  kind\tstart\tduration\tworker\tdetail\ton critical path")
	onPath := 0
	for _, sp := range evs {
		d := sp.Duration(end)
		worker := "-"
		if sp.Worker >= 0 {
			worker = fmt.Sprintf("%d", sp.Worker)
		}
		// A fault overlaps the path if its [start, start+d] window
		// intersects the path's interval.
		overlap := sp.Start <= cp.End && sp.Start+d >= cp.Start
		mark := ""
		if overlap {
			mark = "yes"
			onPath++
		}
		fmt.Fprintf(w, "  %s\t%.3fs\t%.3fs\t%s\t%s\t%s\n",
			sp.Kind, float64(sp.Start), float64(d), worker, sp.Detail, mark)
	}
	w.Flush()
	fmt.Printf("  %d of %d overlap the critical path window\n", onPath, len(evs))
}

// pathTasks counts distinct tasks on the critical path.
func pathTasks(cp *lfm.TraceCriticalPath) int {
	seen := map[int]bool{}
	for _, sp := range cp.Steps {
		seen[sp.Task] = true
	}
	return len(seen)
}

func buckets(st *lfm.TraceStore, byWorker bool, title string) {
	bs := st.Bottlenecks(byWorker)
	if len(bs) == 0 {
		return
	}
	fmt.Printf("\n%s\n", title)
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "  group\ttotal\tdep-wait\tqueue\tstage\texec\toutput\twaste\tattempts\twasted")
	for _, b := range bs {
		fmt.Fprintf(w, "  %s\t%.1fs\t%.1fs\t%.1fs\t%.1fs\t%.1fs\t%.1fs\t%.1fs\t%d\t%d\n",
			b.Group, float64(b.Total()), float64(b.DepWait), float64(b.Queue),
			float64(b.Stage), float64(b.Exec), float64(b.Output), float64(b.Waste),
			b.Attempts, b.Wasted)
	}
	w.Flush()
}
