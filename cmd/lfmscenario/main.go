// Command lfmscenario drives the canned scenario suite — the repo's
// regression gate — and the bit-exact trace replay machinery.
//
// Usage:
//
//	lfmscenario list
//	lfmscenario describe NAME
//	lfmscenario run NAME [-seed N] [-json FILE] [-archive FILE]
//	lfmscenario run -all [-json FILE]
//	lfmscenario record NAME [-seed N] -o TRACE [-summary FILE]
//	lfmscenario replay TRACE [-summary FILE]
//	lfmscenario export [-refresh] [-readme FILE] [-experiments FILE] [-json FILE]
//
// `run` executes scenarios and prints each invariant's verdict, exiting
// nonzero if any fails (`-archive` also writes the run's lfmdiff archive,
// scheduler event stream included). `record` captures a scenario run as a
// versioned JSONL trace; `replay` re-runs a trace byte-identically and
// fails on outcome-digest divergence. `export` runs the whole suite and renders
// the scenario catalog and regression tables; with `-refresh` it splices
// them between the marker comments in README.md and EXPERIMENTS.md, which
// is how those sections are generated (CI regenerates and fails on drift).
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"os"
	"strings"

	"lfm"
)

func main() {
	flag.Usage = usage
	flag.Parse()
	if flag.NArg() < 1 {
		usage()
		os.Exit(2)
	}
	cmd, args := flag.Arg(0), flag.Args()[1:]
	var err error
	switch cmd {
	case "list":
		err = cmdList(args)
	case "describe":
		err = cmdDescribe(args)
	case "run":
		err = cmdRun(args)
	case "record":
		err = cmdRecord(args)
	case "replay":
		err = cmdReplay(args)
	case "export":
		err = cmdExport(args)
	default:
		fmt.Fprintf(os.Stderr, "lfmscenario: unknown command %q\n", cmd)
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "lfmscenario: %v\n", err)
		var verdict *verdictError
		if errors.As(err, &verdict) {
			os.Exit(3)
		}
		os.Exit(1)
	}
}

// verdictError marks a run that completed but failed its verdict — broken
// invariants or a diverged replay digest. main exits 3 for these (versus 1
// for operational errors), so CI can tell "the run regressed" apart from
// "the tool fell over".
type verdictError struct {
	msg string
}

func (e *verdictError) Error() string { return e.msg }

func verdictf(format string, args ...any) error {
	return &verdictError{msg: fmt.Sprintf(format, args...)}
}

// parseArgs lets subcommands accept their positional name before or after
// the flags (Go's flag package stops at the first non-flag token). Leading
// non-flag tokens are peeled off, the rest are flag-parsed, and any
// trailing positionals are appended.
func parseArgs(fs *flag.FlagSet, args []string) []string {
	var pos []string
	for len(args) > 0 && !strings.HasPrefix(args[0], "-") {
		pos = append(pos, args[0])
		args = args[1:]
	}
	fs.Parse(args)
	return append(pos, fs.Args()...)
}

func usage() {
	fmt.Fprint(os.Stderr, `usage:
  lfmscenario list
  lfmscenario describe NAME
  lfmscenario run NAME [-seed N] [-json FILE] [-archive FILE]
  lfmscenario run -all [-json FILE]
  lfmscenario record NAME [-seed N] -o TRACE [-summary FILE]
  lfmscenario replay TRACE [-summary FILE]
  lfmscenario export [-refresh] [-readme FILE] [-experiments FILE] [-json FILE]
`)
}

func cmdList(args []string) error {
	fs := flag.NewFlagSet("list", flag.ExitOnError)
	parseArgs(fs, args)
	for _, s := range lfm.AllScenarios() {
		fmt.Printf("%-18s %s\n", s.Name, s.Summary)
	}
	return nil
}

func cmdDescribe(args []string) error {
	fs := flag.NewFlagSet("describe", flag.ExitOnError)
	pos := parseArgs(fs, args)
	if len(pos) != 1 {
		return fmt.Errorf("describe needs exactly one scenario name")
	}
	s, err := lfm.ScenarioByName(pos[0])
	if err != nil {
		return err
	}
	fmt.Printf("%s — %s\n\n", s.Name, s.Summary)
	fmt.Printf("%s\n\n", s.Details)
	fmt.Printf("default seed:    %d\n", s.Seed)
	fmt.Printf("headline metric: %s\n", s.Headline)
	fmt.Println("invariants:")
	for _, iv := range s.Invariants {
		fmt.Printf("  %-28s %s\n", iv.Name, iv.Detail)
	}
	return nil
}

// runOne executes a scenario and prints its verdict block.
func runOne(s *lfm.Scenario, seed int64) (*lfm.ScenarioResult, error) {
	r, err := s.Run(seed)
	if err != nil {
		return nil, err
	}
	printResult(r)
	return r, nil
}

// runArchived executes a scenario with the observability plane and a
// scheduler trace attached and writes its run archive (event stream
// included, so `lfmdiff explain` can bisect it).
func runArchived(s *lfm.Scenario, seed int64, path string) (*lfm.ScenarioResult, error) {
	r, arch, err := lfm.RunScenarioArchived(s, lfm.ScenarioArchiveOptions{Seed: seed, Events: true})
	if err != nil {
		return nil, err
	}
	data, err := lfm.WriteRunArchive(arch)
	if err != nil {
		return nil, err
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return nil, err
	}
	printResult(r)
	fmt.Printf("  archive -> %s (%d bytes, %d events)\n", path, len(data), len(arch.Events))
	return r, nil
}

// printResult prints one scenario result's verdict block.
func printResult(r *lfm.ScenarioResult) {
	verdict := "PASS"
	if !r.Passed {
		verdict = "FAIL"
	}
	fmt.Printf("%-18s %s  (seed %d)\n", r.Scenario, verdict, r.Seed)
	for _, m := range r.Metrics {
		unit := m.Unit
		if unit != "" {
			unit = " " + unit
		}
		fmt.Printf("    %-26s %g%s\n", m.Name, m.Value, unit)
	}
	for _, iv := range r.Invariants {
		mark := "ok  "
		if !iv.OK {
			mark = "FAIL"
		}
		fmt.Printf("  %s %-28s %s\n", mark, iv.Name, iv.Detail)
		if !iv.OK {
			fmt.Printf("       -> %s\n", iv.Error)
		}
	}
}

// writeResults writes the results array as indented JSON.
func writeResults(path string, results []*lfm.ScenarioResult) error {
	if path == "" {
		return nil
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	return enc.Encode(results)
}

func cmdRun(args []string) error {
	fs := flag.NewFlagSet("run", flag.ExitOnError)
	all := fs.Bool("all", false, "run every canned scenario")
	seed := fs.Int64("seed", 0, "override the scenario's default seed (single-scenario runs only)")
	jsonOut := fs.String("json", "", "write the results array as JSON to this file")
	archive := fs.String("archive", "", "write the run's archive (with the scheduler event stream, for lfmdiff) to this file; single-scenario runs only")
	pos := parseArgs(fs, args)

	var results []*lfm.ScenarioResult
	switch {
	case *all:
		if len(pos) != 0 {
			return fmt.Errorf("run -all takes no scenario names")
		}
		if *archive != "" {
			return fmt.Errorf("run -archive needs a single scenario name")
		}
		for _, s := range lfm.AllScenarios() {
			r, err := runOne(s, 0)
			if err != nil {
				return err
			}
			results = append(results, r)
		}
	case len(pos) == 1:
		s, err := lfm.ScenarioByName(pos[0])
		if err != nil {
			return err
		}
		var r *lfm.ScenarioResult
		if *archive != "" {
			r, err = runArchived(s, *seed, *archive)
		} else {
			r, err = runOne(s, *seed)
		}
		if err != nil {
			return err
		}
		results = append(results, r)
	default:
		return fmt.Errorf("run needs a scenario name or -all")
	}
	if err := writeResults(*jsonOut, results); err != nil {
		return err
	}
	failed := 0
	for _, r := range results {
		if !r.Passed {
			failed++
		}
	}
	if failed > 0 {
		return verdictf("%d of %d scenarios failed their invariants", failed, len(results))
	}
	fmt.Printf("%d scenario(s) passed\n", len(results))
	return nil
}

// writeSummary writes the run's unified summary JSON.
func writeSummary(path string, out *lfm.Outcome) error {
	if path == "" {
		return nil
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return out.WriteSummaryJSON(f)
}

func cmdRecord(args []string) error {
	fs := flag.NewFlagSet("record", flag.ExitOnError)
	seed := fs.Int64("seed", 0, "override the scenario's default seed")
	out := fs.String("o", "", "trace output file (required)")
	summary := fs.String("summary", "", "also write the recording run's summary JSON here")
	pos := parseArgs(fs, args)
	if len(pos) != 1 || *out == "" {
		return fmt.Errorf("record needs a scenario name and -o TRACE")
	}
	s, err := lfm.ScenarioByName(pos[0])
	if err != nil {
		return err
	}
	r, data, err := s.Record(*seed, nil)
	if err != nil {
		return err
	}
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		return err
	}
	if err := writeSummary(*summary, r.Outcome); err != nil {
		return err
	}
	verdict := "PASS"
	if !r.Passed {
		verdict = "FAIL"
	}
	fmt.Printf("recorded %s (seed %d, %s) -> %s (%d bytes)\n",
		r.Scenario, r.Seed, verdict, *out, len(data))
	if !r.Passed {
		return verdictf("scenario %s failed its invariants during recording", r.Scenario)
	}
	return nil
}

func cmdReplay(args []string) error {
	fs := flag.NewFlagSet("replay", flag.ExitOnError)
	// -verify is the historical spelling; divergence now always fails
	// (printing DIVERGED and exiting 0 buried determinism breaks).
	fs.Bool("verify", false, "deprecated no-op: replay always verifies the recorded outcome digest")
	summary := fs.String("summary", "", "write the replayed run's summary JSON here")
	pos := parseArgs(fs, args)
	if len(pos) != 1 {
		return fmt.Errorf("replay needs exactly one trace file")
	}
	data, err := os.ReadFile(pos[0])
	if err != nil {
		return err
	}
	ro, err := lfm.ReplayScenarioTrace(data, nil)
	if err != nil {
		return err
	}
	if err := writeSummary(*summary, ro.Outcome); err != nil {
		return err
	}
	match := "MATCH"
	if ro.Digest != ro.RecordedDigest {
		match = "DIVERGED"
	}
	fmt.Printf("replayed %s (%s, %d tasks): digest %s\n",
		ro.Header.Scenario, ro.Header.Workload, len(ro.Workload.Tasks), match)
	fmt.Printf("  recorded %s\n  replayed %s\n", ro.RecordedDigest, ro.Digest)
	if err := ro.Verify(); err != nil {
		return &verdictError{msg: err.Error()}
	}
	return nil
}

func cmdExport(args []string) error {
	fs := flag.NewFlagSet("export", flag.ExitOnError)
	refresh := fs.Bool("refresh", false, "splice the generated tables into the docs instead of printing them")
	readme := fs.String("readme", "README.md", "file holding the scenario catalog markers")
	experiments := fs.String("experiments", "EXPERIMENTS.md", "file holding the regression table markers")
	jsonOut := fs.String("json", "", "write the results array as JSON to this file")
	parseArgs(fs, args)

	var results []*lfm.ScenarioResult
	for _, s := range lfm.AllScenarios() {
		r, err := s.Run(0)
		if err != nil {
			return err
		}
		results = append(results, r)
	}
	if err := writeResults(*jsonOut, results); err != nil {
		return err
	}
	catalog := lfm.ScenarioCatalog()
	table := lfm.ScenarioRegressionTable(results)
	if !*refresh {
		fmt.Println("## Scenario catalog")
		fmt.Println()
		fmt.Print(catalog)
		fmt.Println()
		fmt.Println("## Scenario regression table")
		fmt.Println()
		fmt.Print(table)
		return nil
	}
	changedReadme, err := lfm.RefreshScenarioSection(*readme, lfm.ScenarioCatalogBegin, lfm.ScenarioCatalogEnd, catalog)
	if err != nil {
		return err
	}
	changedExp, err := lfm.RefreshScenarioSection(*experiments, lfm.ScenarioRegressionBegin, lfm.ScenarioRegressionEnd, table)
	if err != nil {
		return err
	}
	status := func(changed bool) string {
		if changed {
			return "updated"
		}
		return "up to date"
	}
	fmt.Printf("%s: %s\n%s: %s\n", *readme, status(changedReadme), *experiments, status(changedExp))
	failed := []string{}
	for _, r := range results {
		if !r.Passed {
			failed = append(failed, r.Scenario)
		}
	}
	if len(failed) > 0 {
		return verdictf("scenarios failed while exporting: %s", strings.Join(failed, ", "))
	}
	return nil
}
