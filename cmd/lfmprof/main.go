// Command lfmprof renders a telemetry export (as written by
// lfmbench -telemetry-out or RunTelemetry.WriteJSONL) as human-readable
// profiles: per-category resource usage distributions with allocation-label
// audit, per-node allocated-versus-used utilization timelines, detected
// anomalies, and — when the export holds several runs — a comparative
// waste table across strategies.
//
// Usage:
//
//	lfmprof [-csv FILE] [-width N] [-allow-invalid] TELEMETRY.jsonl
//
// The file may be "-" for stdin. -csv additionally dumps every attempt's
// usage series as flat CSV for spreadsheet or notebook analysis.
//
// Exit status: 0 ok, 1 operational error (unreadable or corrupt export),
// 2 usage, 3 telemetry invariant breach (series over cap, non-monotone
// deltas, lost peaks). -allow-invalid still renders a breached export but
// suppresses the nonzero exit.
package main

import (
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"strings"
	"text/tabwriter"

	"lfm"
)

func main() {
	csvOut := flag.String("csv", "", "also write every attempt series as CSV to this file (- for stdout)")
	width := flag.Int("width", 60, "character width of the node utilization bars")
	allowInvalid := flag.Bool("allow-invalid", false, "exit 0 even when a run breaches the telemetry invariants")
	flag.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: lfmprof [-csv FILE] [-width N] [-allow-invalid] TELEMETRY.jsonl")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() != 1 {
		flag.Usage()
		os.Exit(2)
	}

	in := os.Stdin
	if path := flag.Arg(0); path != "-" {
		f, err := os.Open(path)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		in = f
	}
	runs, err := lfm.ReadTelemetry(in)
	if err != nil {
		fatal(err)
	}
	if len(runs) == 0 {
		fatal(fmt.Errorf("no telemetry runs in %s", flag.Arg(0)))
	}

	for i, rt := range runs {
		if i > 0 {
			fmt.Println()
		}
		render(os.Stdout, rt, *width)
	}
	if len(runs) > 1 {
		fmt.Println()
		compare(os.Stdout, runs)
	}

	if *csvOut != "" {
		w := io.Writer(os.Stdout)
		if *csvOut != "-" {
			f, err := os.Create(*csvOut)
			if err != nil {
				fatal(err)
			}
			defer f.Close()
			w = f
		}
		for _, rt := range runs {
			if err := rt.WriteSeriesCSV(w); err != nil {
				fatal(err)
			}
		}
	}

	if err := checkRuns(runs); err != nil {
		fmt.Fprintf(os.Stderr, "lfmprof: %v; pass -allow-invalid to suppress\n", err)
		if !*allowInvalid {
			os.Exit(3)
		}
	}
}

// checkRuns verifies every run's telemetry invariants (bounded monotone
// series, exact peaks), reporting the first breach.
func checkRuns(runs []*lfm.RunTelemetry) error {
	for i, rt := range runs {
		if err := rt.CheckInvariants(); err != nil {
			return fmt.Errorf("run %d (%s/%s) breaches telemetry invariants: %w",
				i, orDash(rt.Meta.Workload), orDash(rt.Meta.Strategy), err)
		}
	}
	return nil
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "lfmprof: %v\n", err)
	os.Exit(1)
}

// render prints one run: header, category profiles, utilization summary,
// node timelines, anomalies.
func render(w io.Writer, rt *lfm.RunTelemetry, width int) {
	m := rt.Meta
	fmt.Fprintf(w, "=== %s / %s: %d workers, seed %d, makespan %.0fs ===\n",
		orDash(m.Workload), orDash(m.Strategy), m.Workers, m.Seed, float64(m.Makespan))

	if len(rt.Profiles) > 0 {
		fmt.Fprintln(w, "\ncategory profiles (memory in MB, times in s):")
		tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
		fmt.Fprintln(tw, "category\tdone\tkilled\tmem p50\tp90\tp99\tmax\tcores max\tttp p50\tshape\tlabel mem\tcoverage")
		for _, p := range rt.Profiles {
			label, coverage := "-", "-"
			if p.Label != nil {
				label = fmt.Sprintf("%.0f", p.Label.MemoryMB)
				coverage = fmt.Sprintf("%.0f%%", 100*p.LabelCoverage)
			}
			fmt.Fprintf(tw, "%s\t%d\t%d\t%.0f\t%.0f\t%.0f\t%.0f\t%.1f\t%.0f\t%.2f\t%s\t%s\n",
				p.Category, p.Completed, p.Killed,
				p.PeakMemMB.P50, p.PeakMemMB.P90, p.PeakMemMB.P99, p.PeakMemMB.Max,
				p.PeakCores.Max, p.TimeToPeakS.P50, p.MeanOverPeakMem, label, coverage)
		}
		tw.Flush()
	}

	u := rt.Util
	fmt.Fprintf(w, "\nutilization: provisioned %.0f core-s, allocated %.0f (%.1f%%), used %.0f (%.1f%%)\n",
		u.ProvisionedCoreSeconds, u.AllocatedCoreSeconds, 100*u.AllocatedFraction,
		u.UsedCoreSeconds, 100*u.UsedFraction)
	fmt.Fprintf(w, "waste %.1f%% of provisioned cores, %.1f%% of allocated memory; packing efficiency %.1f%%\n",
		100*u.WasteFraction, 100*u.MemWasteFraction, 100*u.PackingEfficiency)

	if len(rt.Nodes) > 0 {
		fmt.Fprintf(w, "\nnode timelines (core level, ramp ' %s' scales 0 to capacity, bar spans the run):\n", rampChars)
		for _, n := range rt.Nodes {
			renderNode(w, n, rt.Meta.Makespan, width)
		}
	}

	if len(rt.Anomalies) > 0 {
		fmt.Fprintln(w, "\nanomalies:")
		tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
		fmt.Fprintln(tw, "kind\ttask\tattempt\tcategory\tnode\tat(s)\tdetail")
		for _, a := range rt.Anomalies {
			fmt.Fprintf(tw, "%s\t%d\t%d\t%s\t%d\t%.0f\t%s\n",
				a.Kind, a.Task, a.Attempt, orDash(a.Category), a.Node, float64(a.At), a.Detail)
		}
		tw.Flush()
	}
}

const rampChars = ".:-=+*#@"

// renderNode draws one node's allocated and used core levels as two
// time-bucketed character ramps.
func renderNode(w io.Writer, n *lfm.TelemetryNode, makespan lfm.Time, width int) {
	end := n.Left
	if end < 0 || end > makespan {
		end = makespan
	}
	span := float64(end - n.Joined)
	if span <= 0 || width <= 0 {
		return
	}
	alloc := bucketize(n.Alloc, n.Joined, span, width)
	used := bucketize(n.Used, n.Joined, span, width)
	cap := n.Capacity.Cores
	util := 0.0
	if n.ProvisionedCoreSeconds > 0 {
		util = n.UsedCoreSeconds / n.ProvisionedCoreSeconds
	}
	fmt.Fprintf(w, "  node %3d (%2.0fc %5.0fMB)  alloc |%s|\n", n.Node, cap, n.Capacity.MemoryMB, ramp(alloc, cap, rampChars))
	fmt.Fprintf(w, "  %24s used  |%s|  %.0f%% of provisioned\n", "", ramp(used, cap, rampChars), 100*util)
}

// bucketize averages a delta-encoded level series into width time buckets.
func bucketize(pts []lfm.TelemetryPoint, start lfm.Time, span float64, width int) []float64 {
	out := make([]float64, width)
	if len(pts) == 0 {
		return out
	}
	// Walk the step function: level holds from each point's time to the next.
	t := start
	level := 0.0
	// Integrate level over each bucket.
	acc := make([]float64, width)
	bucketDur := span / float64(width)
	addSpan := func(from, to lfm.Time, lvl float64) {
		if to <= from || lvl == 0 {
			return
		}
		b0 := int(float64(from-start) / bucketDur)
		b1 := int(float64(to-start) / bucketDur)
		for b := b0; b <= b1 && b < width; b++ {
			if b < 0 {
				continue
			}
			lo := start + lfm.Time(float64(b)*bucketDur)
			hi := lo + lfm.Time(bucketDur)
			seg := math.Min(float64(to), float64(hi)) - math.Max(float64(from), float64(lo))
			if seg > 0 {
				acc[b] += lvl * seg
			}
		}
	}
	for _, p := range pts {
		next := t + p.DT
		addSpan(t, next, level)
		t = next
		level = p.U.Cores
	}
	addSpan(t, start+lfm.Time(span), level)
	for i := range out {
		out[i] = acc[i] / bucketDur
	}
	return out
}

// ramp renders bucket levels as characters scaled to cap.
func ramp(levels []float64, cap float64, chars string) string {
	var b strings.Builder
	for _, v := range levels {
		if v <= 0 || cap <= 0 {
			b.WriteByte(' ')
			continue
		}
		idx := int(v / cap * float64(len(chars)))
		if idx >= len(chars) {
			idx = len(chars) - 1
		}
		b.WriteByte(chars[idx])
	}
	return b.String()
}

// compare prints the cross-run waste table for multi-run exports.
func compare(w io.Writer, runs []*lfm.RunTelemetry) {
	fmt.Fprintln(w, "=== strategy comparison ===")
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "workload\tstrategy\tmakespan(s)\talloc-core-s\tused-core-s\twaste\tpacking\tanomalies")
	for _, rt := range runs {
		u := rt.Util
		fmt.Fprintf(tw, "%s\t%s\t%.0f\t%.0f\t%.0f\t%.1f%%\t%.1f%%\t%d\n",
			orDash(rt.Meta.Workload), orDash(rt.Meta.Strategy), float64(rt.Meta.Makespan),
			u.AllocatedCoreSeconds, u.UsedCoreSeconds,
			100*u.WasteFraction, 100*u.PackingEfficiency, len(rt.Anomalies))
	}
	tw.Flush()
}

func orDash(s string) string {
	if s == "" {
		return "-"
	}
	return s
}
