package main

import (
	"bytes"
	"flag"
	"os"
	"strings"
	"testing"

	"lfm"
)

var update = flag.Bool("update", false, "rewrite the golden files from current output")

// TestRenderGolden locks lfmprof's report rendering against a canned
// telemetry fixture: the simulation is deterministic, so the rendered text
// must be byte-stable. Regenerate with `go test ./cmd/lfmprof -update`
// after an intentional format change.
func TestRenderGolden(t *testing.T) {
	f, err := os.Open("testdata/telemetry.jsonl")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	runs, err := lfm.ReadTelemetry(f)
	if err != nil {
		t.Fatal(err)
	}
	if len(runs) != 1 {
		t.Fatalf("fixture holds %d runs, want 1", len(runs))
	}
	var buf bytes.Buffer
	render(&buf, runs[0], 60)

	const golden = "testdata/render.golden"
	if *update {
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("render output drifted from %s (run with -update after intentional changes)\ngot:\n%s", golden, buf.String())
	}
}

// TestCheckRunsFixture verifies the committed fixture satisfies the
// telemetry invariants (so lfmprof exits 0 on it), and that a tampered
// export — a raw-measurement count the series no longer accounts for —
// trips checkRuns, which is what drives the exit-3 path.
func TestCheckRunsFixture(t *testing.T) {
	f, err := os.Open("testdata/telemetry.jsonl")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	runs, err := lfm.ReadTelemetry(f)
	if err != nil {
		t.Fatal(err)
	}
	if err := checkRuns(runs); err != nil {
		t.Fatalf("fixture breaches invariants: %v", err)
	}
	if len(runs) == 0 || len(runs[0].Attempts) == 0 {
		t.Fatal("fixture has no attempts to tamper with")
	}
	runs[0].Attempts[0].RawMeasurements++
	err = checkRuns(runs)
	if err == nil {
		t.Fatal("tampered export passed checkRuns")
	}
	if !strings.Contains(err.Error(), "invariants") {
		t.Errorf("breach error %q does not name the invariants", err)
	}
}
