// Command lfmrun executes a command under a real lightweight function
// monitor: it polls /proc for the whole process tree's memory and CPU use,
// enforces limits by killing the process group, and prints a resource
// report — the paper's §VI-B1 mechanism for live Unix processes.
//
// Usage:
//
//	lfmrun [-mem MB] [-cpu SECONDS] [-wall SECONDS] [-poll MS] -- command [args...]
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"time"

	"lfm"
)

func main() {
	memMB := flag.Int64("mem", 0, "memory limit in MB (0 = unlimited)")
	cpuS := flag.Float64("cpu", 0, "CPU-time limit in seconds (0 = unlimited)")
	wallS := flag.Float64("wall", 0, "wall-clock limit in seconds (0 = unlimited)")
	pollMS := flag.Int("poll", 50, "poll interval in milliseconds")
	quiet := flag.Bool("q", false, "suppress the report; exit status only")
	flag.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: lfmrun [-mem MB] [-cpu S] [-wall S] [-poll MS] -- command [args...]")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() == 0 {
		flag.Usage()
		os.Exit(2)
	}

	cmd := exec.Command(flag.Arg(0), flag.Args()[1:]...)
	cmd.Stdout = os.Stdout
	cmd.Stderr = os.Stderr
	cmd.Stdin = os.Stdin

	limits := lfm.ProcessLimits{
		RSSBytes: *memMB << 20,
		CPUTime:  time.Duration(*cpuS * float64(time.Second)),
		WallTime: time.Duration(*wallS * float64(time.Second)),
	}
	rep, err := lfm.RunMonitored(context.Background(), cmd, limits,
		time.Duration(*pollMS)*time.Millisecond)
	if err != nil {
		fmt.Fprintf(os.Stderr, "lfmrun: %v\n", err)
		os.Exit(1)
	}
	if !*quiet {
		fmt.Fprintf(os.Stderr, "lfm: wall %v, cpu %v, peak rss %.1f MB, max procs %d, polls %d\n",
			rep.WallTime.Round(time.Millisecond), rep.CPUTime.Round(time.Millisecond),
			float64(rep.PeakRSSBytes)/(1<<20), rep.MaxProcs, rep.Polls)
		if rep.Killed {
			fmt.Fprintf(os.Stderr, "lfm: KILLED: %s limit exceeded\n", rep.Exhausted)
		}
	}
	if rep.Killed {
		os.Exit(125)
	}
	os.Exit(rep.ExitCode)
}
