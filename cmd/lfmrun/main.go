// Command lfmrun executes a command under a real lightweight function
// monitor: it polls /proc for the whole process tree's memory and CPU use,
// enforces limits by killing the process group, and prints a resource
// report — the paper's §VI-B1 mechanism for live Unix processes.
//
// Usage:
//
//	lfmrun [-mem MB] [-cpu SECONDS] [-wall SECONDS] [-poll MS] [-top] -- command [args...]
//
// -top redraws a one-line live view of the monitored tree on stderr: an
// RSS sparkline against the memory limit, the CPU clock, and the process
// count, updated at the poll cadence.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"time"

	"lfm"
)

func main() {
	memMB := flag.Int64("mem", 0, "memory limit in MB (0 = unlimited)")
	cpuS := flag.Float64("cpu", 0, "CPU-time limit in seconds (0 = unlimited)")
	wallS := flag.Float64("wall", 0, "wall-clock limit in seconds (0 = unlimited)")
	pollMS := flag.Int("poll", 50, "poll interval in milliseconds")
	quiet := flag.Bool("q", false, "suppress the report; exit status only")
	top := flag.Bool("top", false, "live one-line resource view on stderr while the command runs")
	flag.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: lfmrun [-mem MB] [-cpu S] [-wall S] [-poll MS] [-top] -- command [args...]")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() == 0 {
		flag.Usage()
		os.Exit(2)
	}

	cmd := exec.Command(flag.Arg(0), flag.Args()[1:]...)
	cmd.Stdout = os.Stdout
	cmd.Stderr = os.Stderr
	cmd.Stdin = os.Stdin

	limits := lfm.ProcessLimits{
		RSSBytes: *memMB << 20,
		CPUTime:  time.Duration(*cpuS * float64(time.Second)),
		WallTime: time.Duration(*wallS * float64(time.Second)),
	}
	poll := time.Duration(*pollMS) * time.Millisecond

	var rep *lfm.ProcessReport
	var err error
	if *top {
		rep, err = lfm.RunMonitoredObserved(context.Background(), cmd, limits, poll,
			liveLine(limits))
		fmt.Fprintln(os.Stderr)
	} else {
		rep, err = lfm.RunMonitored(context.Background(), cmd, limits, poll)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "lfmrun: %v\n", err)
		os.Exit(1)
	}
	if !*quiet {
		fmt.Fprintf(os.Stderr, "lfm: wall %v, cpu %v, peak rss %.1f MB, max procs %d, polls %d\n",
			rep.WallTime.Round(time.Millisecond), rep.CPUTime.Round(time.Millisecond),
			float64(rep.PeakRSSBytes)/(1<<20), rep.MaxProcs, rep.Polls)
		if rep.Killed {
			fmt.Fprintf(os.Stderr, "lfm: KILLED: %s limit exceeded\n", rep.Exhausted)
		}
	}
	if rep.Killed {
		os.Exit(125)
	}
	os.Exit(rep.ExitCode)
}

// liveLine returns a sample callback that redraws one status line on
// stderr: a trailing RSS sparkline, the RSS meter against the memory
// limit when one is set, the accumulated CPU clock, and the tree size.
func liveLine(limits lfm.ProcessLimits) func(lfm.ProcessSample) {
	var rss []float64
	return func(s lfm.ProcessSample) {
		rss = append(rss, float64(s.RSSBytes))
		if len(rss) > 256 {
			rss = rss[len(rss)-256:]
		}
		line := fmt.Sprintf("\r\x1b[Klfm: rss %6.1f MB |%s|",
			float64(s.RSSBytes)/(1<<20), lfm.Sparkline(rss, 24))
		if limits.RSSBytes > 0 {
			line += fmt.Sprintf(" [%s]", lfm.Bar(float64(s.RSSBytes)/float64(limits.RSSBytes), 10))
		}
		line += fmt.Sprintf(" cpu %6.2fs  procs %d", s.CPUTime.Seconds(), s.Procs)
		fmt.Fprint(os.Stderr, line)
	}
}
