package main

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"lfm"
)

// gateScenario keeps the in-process gate tests fast: one small canned
// scenario instead of the full catalog.
const gateScenario = "heavy-tail"

// writeScenarioArchive runs one canned scenario and writes its archive
// (with the scheduler event stream) to dir, returning the path and the
// in-memory archive.
func writeScenarioArchive(t *testing.T, dir, name string, customize func(*lfm.RunConfig)) (string, *lfm.RunArchive) {
	t.Helper()
	s, err := lfm.ScenarioByName(name)
	if err != nil {
		t.Fatal(err)
	}
	_, arch, err := lfm.RunScenarioArchived(s, lfm.ScenarioArchiveOptions{Events: true, Customize: customize})
	if err != nil {
		t.Fatal(err)
	}
	data, err := lfm.WriteRunArchive(arch)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, name+".lfma")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return path, arch
}

// TestGateRoundTrip is the acceptance loop in miniature: refresh a baseline
// into a fresh directory, then gate against it — the unchanged tree must
// pass with zero regressions.
func TestGateRoundTrip(t *testing.T) {
	dir := t.TempDir()
	var out bytes.Buffer
	args := []string{"-baselines", dir, "-scenarios", gateScenario, "-refresh"}
	if err := cmdGate(&out, args); err != nil {
		t.Fatalf("gate -refresh: %v", err)
	}
	if _, err := os.Stat(filepath.Join(dir, gateScenario+".lfma")); err != nil {
		t.Fatalf("baseline not written: %v", err)
	}
	out.Reset()
	if err := cmdGate(&out, []string{"-baselines", dir, "-scenarios", gateScenario}); err != nil {
		t.Fatalf("gate on unchanged tree failed: %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "ok") || strings.Contains(out.String(), "REGRESSED") {
		t.Fatalf("gate output: %s", out.String())
	}
}

// TestGatePerturbFails is the gate's self-test: a seeded perturbation must
// trip the gate, exiting via *errRegression with the failure naming the
// regressed metric and its delta.
func TestGatePerturbFails(t *testing.T) {
	dir := t.TempDir()
	var out bytes.Buffer
	if err := cmdGate(&out, []string{"-baselines", dir, "-scenarios", gateScenario, "-refresh"}); err != nil {
		t.Fatalf("gate -refresh: %v", err)
	}
	out.Reset()
	mdPath := filepath.Join(dir, "gate.md")
	jsonPath := filepath.Join(dir, "gate.json")
	err := cmdGate(&out, []string{
		"-baselines", dir, "-scenarios", gateScenario,
		"-perturb", "workers-halved", "-md", mdPath, "-json", jsonPath,
	})
	var reg *errRegression
	if !errors.As(err, &reg) {
		t.Fatalf("perturbed gate returned %v, want *errRegression", err)
	}
	if !strings.Contains(err.Error(), "makespan_s") || !strings.Contains(err.Error(), "+") {
		t.Fatalf("failure does not name the metric and delta: %v", err)
	}
	md, readErr := os.ReadFile(mdPath)
	if readErr != nil {
		t.Fatal(readErr)
	}
	if !strings.Contains(string(md), "regressed") || !strings.Contains(string(md), gateScenario) {
		t.Fatalf("markdown summary missing verdict table:\n%s", md)
	}
	if _, err := os.ReadFile(jsonPath); err != nil {
		t.Fatalf("gate JSON artifact not written: %v", err)
	}
}

// TestGateRefusesPerturbedRefresh: committing perturbed baselines would
// poison every future gate run, so the flag combination is rejected.
func TestGateRefusesPerturbedRefresh(t *testing.T) {
	var out bytes.Buffer
	err := cmdGate(&out, []string{"-baselines", t.TempDir(), "-perturb", "workers-halved", "-refresh"})
	if err == nil || !strings.Contains(err.Error(), "perturb") {
		t.Fatalf("gate -perturb -refresh = %v, want refusal", err)
	}
}

// TestCompareRegression runs compare end-to-end over archive files: a run
// against its perturbed twin must regress (exit-3 error), and against
// itself must not.
func TestCompareRegression(t *testing.T) {
	dir := t.TempDir()
	basePath, _ := writeScenarioArchive(t, dir, gateScenario, nil)

	var out bytes.Buffer
	if err := cmdCompare(&out, []string{basePath, basePath}); err != nil {
		t.Fatalf("self-compare: %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "0 improved, 0 regressed") {
		t.Fatalf("self-compare output: %s", out.String())
	}

	perturb, err := lfm.DiffPerturbation("workers-halved")
	if err != nil {
		t.Fatal(err)
	}
	candDir := filepath.Join(dir, "cand")
	if err := os.Mkdir(candDir, 0o755); err != nil {
		t.Fatal(err)
	}
	candPath, _ := writeScenarioArchive(t, candDir, gateScenario, perturb)
	out.Reset()
	err = cmdCompare(&out, []string{basePath, candPath})
	var reg *errRegression
	if !errors.As(err, &reg) {
		t.Fatalf("perturbed compare returned %v, want *errRegression\n%s", err, out.String())
	}
	if !strings.Contains(err.Error(), "makespan_s") {
		t.Fatalf("compare failure does not name the metric: %v", err)
	}
}

// TestExplainPinpointsDivergence covers the acceptance criterion verbatim:
// two same-seed archives, one with a tampered scheduler event stream, and
// `explain` must bisect to exactly that event index.
func TestExplainPinpointsDivergence(t *testing.T) {
	dir := t.TempDir()
	_, base := writeScenarioArchive(t, dir, gateScenario, nil)
	_, cand := writeScenarioArchive(t, dir, gateScenario, nil)
	if len(cand.Events) < 10 {
		t.Fatalf("archive has only %d events", len(cand.Events))
	}

	// Identical twins: nothing to explain, exit 0.
	var out bytes.Buffer
	if err := explain(&out, base, cand); err != nil {
		t.Fatalf("identical twins: %v", err)
	}
	if !strings.Contains(out.String(), "identical") {
		t.Fatalf("identical-twins output: %s", out.String())
	}

	// Tamper one mid-stream event (and the digest, as a real determinism
	// break would differ): explain must name that exact index.
	idx := len(cand.Events) / 2
	cand.Events[idx].Worker++
	cand.Header.Digest = "sha256:tampered"
	out.Reset()
	err := explain(&out, base, cand)
	var reg *errRegression
	if !errors.As(err, &reg) {
		t.Fatalf("tampered twins returned %v, want *errRegression", err)
	}
	d := lfm.BisectEventStreams(base.Events, cand.Events)
	if d == nil || d.Index != idx {
		t.Fatalf("bisection found %+v, want index %d", d, idx)
	}
	if !strings.Contains(out.String(), "first divergence") {
		t.Fatalf("explain output lacks the divergence line: %s", out.String())
	}

	// A digest mismatch with no recorded events is an operational error
	// pointing at re-archiving, not a silent pass.
	cand.Events = nil
	out.Reset()
	err = explain(&out, base, cand)
	if err == nil || errors.As(err, &reg) || !strings.Contains(err.Error(), "re-archive") {
		t.Fatalf("event-less explain = %v, want re-archive hint", err)
	}
}
