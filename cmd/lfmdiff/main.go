// Command lfmdiff is the differential observability tool: it compares two
// run archives metric by metric, explains determinism breaks by bisecting
// to the first divergent scheduler event, and gates the canned scenario
// suite against committed baseline archives.
//
// Usage:
//
//	lfmdiff compare BASE.lfma CAND.lfma [-rel F] [-json FILE]
//	lfmdiff explain BASE.lfma CAND.lfma
//	lfmdiff gate [-baselines DIR] [-scenarios a,b] [-rel F]
//	             [-perturb NAME] [-refresh] [-json FILE] [-md FILE]
//
// `compare` prints the classified metric table (exit 3 when anything
// regressed). `explain` handles the "same config, different digest" case:
// it binary-searches both archives' scheduler event streams to the first
// divergent event and exits 3 on divergence. `gate` re-runs the canned
// scenarios and diffs each against baselines/NAME.lfma, failing (exit 3)
// on any regression beyond the noise thresholds — `make diff` wires it
// into CI. `-refresh` rewrites the baselines instead (review the git diff
// before committing, mirroring `lfmscenario export -refresh`). `-perturb`
// applies a named config mutation to the fresh runs, the gate's
// self-test: a perturbed gate run must fail.
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"lfm"
)

// exitRegression is the exit status for "the comparison worked and found a
// regression / divergence" — distinct from 1 (operational error) and 2
// (usage), mirroring the other CLIs' unhealthy-verdict convention.
const exitRegression = 3

// errRegression marks verdict failures so main can exit with
// exitRegression instead of 1.
type errRegression struct{ msg string }

func (e *errRegression) Error() string { return e.msg }

func main() {
	flag.Usage = usage
	flag.Parse()
	if flag.NArg() < 1 {
		usage()
		os.Exit(2)
	}
	cmd, args := flag.Arg(0), flag.Args()[1:]
	var err error
	switch cmd {
	case "compare":
		err = cmdCompare(os.Stdout, args)
	case "explain":
		err = cmdExplain(os.Stdout, args)
	case "gate":
		err = cmdGate(os.Stdout, args)
	default:
		fmt.Fprintf(os.Stderr, "lfmdiff: unknown command %q\n", cmd)
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "lfmdiff: %v\n", err)
		var reg *errRegression
		if errors.As(err, &reg) {
			os.Exit(exitRegression)
		}
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprint(os.Stderr, `usage:
  lfmdiff compare BASE.lfma CAND.lfma [-rel F] [-json FILE]
  lfmdiff explain BASE.lfma CAND.lfma
  lfmdiff gate [-baselines DIR] [-scenarios a,b] [-rel F]
               [-perturb NAME] [-refresh] [-json FILE] [-md FILE]
`)
}

// parseArgs peels leading positionals off before flag parsing, so
// `lfmdiff compare a b -json r.json` and `lfmdiff compare -json r.json a b`
// both work (same idiom as lfmscenario).
func parseArgs(fs *flag.FlagSet, args []string) []string {
	var pos []string
	for len(args) > 0 && !strings.HasPrefix(args[0], "-") {
		pos = append(pos, args[0])
		args = args[1:]
	}
	fs.Parse(args)
	return append(pos, fs.Args()...)
}

// loadArchive reads and validates one archive file.
func loadArchive(path string) (*lfm.RunArchive, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	a, err := lfm.ReadRunArchive(data)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return a, nil
}

// thresholds builds the noise model from the -rel override (0 keeps the
// default).
func thresholds(rel float64) *lfm.DiffThresholds {
	th := lfm.DefaultDiffThresholds()
	if rel > 0 {
		th.Rel = rel
	}
	return th
}

// renderReport prints the classified metric table plus attribution.
func renderReport(w io.Writer, r *lfm.DiffReport) {
	fmt.Fprintf(w, "base: %s seed %d (%s)\n", refName(r.Base), r.Base.Seed, r.Base.Tool)
	fmt.Fprintf(w, "cand: %s seed %d (%s)\n", refName(r.Cand), r.Cand.Seed, r.Cand.Tool)
	fmt.Fprintf(w, "same config: %v   digest match: %v\n\n", r.SameConfig, r.DigestMatch)
	fmt.Fprintf(w, "  %-28s %14s %14s %14s %8s  %s\n", "metric", "base", "cand", "delta", "rel", "class")
	for _, m := range r.Metrics {
		mark := " "
		switch m.Class {
		case lfm.DiffRegressed:
			mark = "!"
		case lfm.DiffImproved:
			mark = "+"
		}
		rel := ""
		if m.Rel != 0 {
			rel = fmt.Sprintf("%+.1f%%", 100*m.Rel)
		}
		fmt.Fprintf(w, "%s %-28s %14.6g %14.6g %+14.6g %8s  %s\n",
			mark, m.Name, m.Base, m.Cand, m.Delta, rel, m.Class)
	}
	fmt.Fprintf(w, "\n%d improved, %d regressed, %d neutral\n", r.Improved, r.Regressed, r.Neutral)
	for _, n := range r.Notes {
		fmt.Fprintf(w, "note: %s\n", n)
	}
	if at := r.Attribution; at != nil {
		fmt.Fprintf(w, "\nattribution:\n")
		for i, b := range at.Buckets {
			if i == 3 {
				fmt.Fprintf(w, "  ... %d more bucket(s)\n", len(at.Buckets)-i)
				break
			}
			fmt.Fprintf(w, "  bucket %-20s %+.3gs total (queue %+.3gs, exec %+.3gs, waste %+.3gs)\n",
				b.Group, b.Total, b.Queue, b.Exec, b.Waste)
		}
		for _, p := range at.Phases {
			fmt.Fprintf(w, "  critical-path %-12s %+.3gs (%.4g -> %.4g)\n", p.Kind, p.Delta, p.Base, p.Cand)
		}
		for _, f := range at.FindingsAdded {
			fmt.Fprintf(w, "  finding added:   %s\n", f)
		}
		for _, f := range at.FindingsRemoved {
			fmt.Fprintf(w, "  finding removed: %s\n", f)
		}
	}
}

func refName(r lfm.DiffRunRef) string {
	if r.Scenario != "" {
		return r.Scenario
	}
	return r.Workload
}

// regressionError summarizes regressed metrics as the failure message —
// the gate's contract is "nonzero, naming the metric and delta".
func regressionError(prefix string, r *lfm.DiffReport) error {
	parts := make([]string, 0, r.Regressed)
	for _, m := range r.Regressions() {
		parts = append(parts, fmt.Sprintf("%s %+.4g (%.4g -> %.4g)", m.Name, m.Delta, m.Base, m.Cand))
	}
	return &errRegression{msg: prefix + "regressed: " + strings.Join(parts, ", ")}
}

func writeJSON(path string, v any) error {
	if path == "" {
		return nil
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	return enc.Encode(v)
}

func cmdCompare(w io.Writer, args []string) error {
	fs := flag.NewFlagSet("compare", flag.ExitOnError)
	rel := fs.Float64("rel", 0, "override the relative noise threshold (default 0.05)")
	jsonOut := fs.String("json", "", "write the DiffReport as JSON to this file")
	pos := parseArgs(fs, args)
	if len(pos) != 2 {
		return fmt.Errorf("compare needs exactly two archive files")
	}
	base, err := loadArchive(pos[0])
	if err != nil {
		return err
	}
	cand, err := loadArchive(pos[1])
	if err != nil {
		return err
	}
	r := lfm.DiffArchives(base, cand, thresholds(*rel))
	renderReport(w, r)
	if err := writeJSON(*jsonOut, r); err != nil {
		return err
	}
	if r.Regressed > 0 {
		return regressionError("", r)
	}
	return nil
}

func cmdExplain(w io.Writer, args []string) error {
	fs := flag.NewFlagSet("explain", flag.ExitOnError)
	pos := parseArgs(fs, args)
	if len(pos) != 2 {
		return fmt.Errorf("explain needs exactly two archive files")
	}
	base, err := loadArchive(pos[0])
	if err != nil {
		return err
	}
	cand, err := loadArchive(pos[1])
	if err != nil {
		return err
	}
	return explain(w, base, cand)
}

// explain handles the determinism triage: identical digests need no
// explanation, different configs explain themselves, and same-config
// digest mismatches get bisected to the first divergent scheduler event.
func explain(w io.Writer, base, cand *lfm.RunArchive) error {
	r := lfm.DiffArchives(base, cand, nil)
	switch {
	case r.DigestMatch:
		fmt.Fprintf(w, "outcome digests match (%s): the runs are identical\n", base.Header.Digest)
		return nil
	case !r.SameConfig:
		fmt.Fprintf(w, "configs differ: the runs are different experiments, not a determinism break\n")
		fmt.Fprintf(w, "(use `lfmdiff compare` for the metric-level diff)\n")
		return nil
	}
	if len(base.Events) == 0 || len(cand.Events) == 0 {
		return fmt.Errorf("same config but digests differ, and %s archive has no event stream: re-archive with events (lfmscenario run -archive writes them)",
			map[bool]string{true: "the base", false: "the candidate"}[len(base.Events) == 0])
	}
	d := lfm.BisectEventStreams(base.Events, cand.Events)
	if d == nil {
		fmt.Fprintf(w, "digests differ but the %d-event scheduler streams are identical: the divergence is outside the event stream (summary/telemetry layer)\n", len(base.Events))
		return &errRegression{msg: "digest mismatch not attributable to the event stream"}
	}
	fmt.Fprintf(w, "same config, digests differ: first divergence at %s\n", d)
	fmt.Fprintf(w, "(%d events compared; everything before index %d is identical)\n",
		len(base.Events), d.Index)
	return &errRegression{msg: fmt.Sprintf("determinism break at event %d", d.Index)}
}

// gateEntry is one scenario's gate outcome in the JSON artifact.
type gateEntry struct {
	Scenario string          `json:"scenario"`
	Baseline string          `json:"baseline,omitempty"`
	Error    string          `json:"error,omitempty"`
	Report   *lfm.DiffReport `json:"report,omitempty"`
}

// gateReport is the `lfmdiff gate -json` artifact.
type gateReport struct {
	SchemaVersion int         `json:"schema_version"`
	Perturb       string      `json:"perturb,omitempty"`
	Entries       []gateEntry `json:"entries"`
}

func cmdGate(w io.Writer, args []string) error {
	fs := flag.NewFlagSet("gate", flag.ExitOnError)
	dir := fs.String("baselines", "baselines", "directory of committed baseline archives")
	names := fs.String("scenarios", "", "comma-separated scenario subset (default: all canned scenarios)")
	rel := fs.Float64("rel", 0, "override the relative noise threshold (default 0.05)")
	perturb := fs.String("perturb", "", "apply a named config perturbation to the fresh runs (gate self-test; must fail)")
	refresh := fs.Bool("refresh", false, "rewrite the baseline archives from fresh runs instead of diffing")
	jsonOut := fs.String("json", "", "write the gate report as JSON to this file")
	mdOut := fs.String("md", "", "write the gate summary as a markdown table to this file")
	pos := parseArgs(fs, args)
	if len(pos) != 0 {
		return fmt.Errorf("gate takes no positional arguments (use -scenarios)")
	}
	var list []string
	if *names != "" {
		list = strings.Split(*names, ",")
	} else {
		for _, s := range lfm.AllScenarios() {
			list = append(list, s.Name)
		}
	}
	sort.Strings(list)

	var customize func(*lfm.RunConfig)
	if *perturb != "" {
		if *refresh {
			return fmt.Errorf("-perturb with -refresh would commit perturbed baselines")
		}
		fn, err := lfm.DiffPerturbation(*perturb)
		if err != nil {
			return err
		}
		customize = fn
	}

	rep := gateReport{SchemaVersion: 1, Perturb: *perturb}
	failures := 0
	for _, name := range list {
		s, err := lfm.ScenarioByName(strings.TrimSpace(name))
		if err != nil {
			return err
		}
		path := filepath.Join(*dir, s.Name+".lfma")
		entry := gateEntry{Scenario: s.Name, Baseline: path}
		// Baselines are written without the event stream: the gate
		// compares metrics, and compact baselines keep the git history
		// reviewable. `lfmscenario run -archive` writes events for
		// bisection work.
		_, arch, err := lfm.RunScenarioArchived(s, lfm.ScenarioArchiveOptions{Customize: customize})
		if err != nil {
			return err
		}
		if *refresh {
			data, err := lfm.WriteRunArchive(arch)
			if err != nil {
				return err
			}
			if err := os.WriteFile(path, data, 0o644); err != nil {
				return err
			}
			fmt.Fprintf(w, "%-18s baseline refreshed (%d bytes)\n", s.Name, len(data))
			rep.Entries = append(rep.Entries, entry)
			continue
		}
		baseline, err := loadArchive(path)
		if err != nil {
			entry.Error = err.Error()
			rep.Entries = append(rep.Entries, entry)
			failures++
			fmt.Fprintf(w, "%-18s ERROR %v\n", s.Name, err)
			continue
		}
		r := lfm.DiffArchives(baseline, arch, thresholds(*rel))
		entry.Report = r
		rep.Entries = append(rep.Entries, entry)
		verdict := "ok"
		if r.Regressed > 0 {
			verdict = "REGRESSED"
			failures++
		}
		fmt.Fprintf(w, "%-18s %-9s %d improved, %d regressed, %d neutral\n",
			s.Name, verdict, r.Improved, r.Regressed, r.Neutral)
		for _, m := range r.Regressions() {
			fmt.Fprintf(w, "    ! %-28s %+.4g (%.4g -> %.4g)\n", m.Name, m.Delta, m.Base, m.Cand)
		}
	}
	if err := writeJSON(*jsonOut, rep); err != nil {
		return err
	}
	if *mdOut != "" {
		if err := os.WriteFile(*mdOut, []byte(gateMarkdown(&rep)), 0o644); err != nil {
			return err
		}
	}
	if *refresh {
		fmt.Fprintf(w, "%d baseline(s) written to %s — review the git diff before committing\n", len(rep.Entries), *dir)
		return nil
	}
	if failures > 0 {
		return gateFailure(&rep, failures)
	}
	fmt.Fprintf(w, "%d scenario(s) within thresholds\n", len(rep.Entries))
	return nil
}

// gateFailure names every regressed metric and its delta — the one-line
// contract `make diff` surfaces in CI logs.
func gateFailure(rep *gateReport, failures int) error {
	var parts []string
	for _, e := range rep.Entries {
		if e.Error != "" {
			parts = append(parts, fmt.Sprintf("%s: %s", e.Scenario, e.Error))
			continue
		}
		if e.Report == nil || e.Report.Regressed == 0 {
			continue
		}
		for _, m := range e.Report.Regressions() {
			parts = append(parts, fmt.Sprintf("%s: %s %+.4g", e.Scenario, m.Name, m.Delta))
		}
	}
	return &errRegression{msg: fmt.Sprintf("%d scenario(s) regressed — %s", failures, strings.Join(parts, "; "))}
}

// gateMarkdown renders the improved/regressed/neutral table CI posts to
// the job summary.
func gateMarkdown(rep *gateReport) string {
	var b strings.Builder
	b.WriteString("### lfmdiff gate\n\n")
	if rep.Perturb != "" {
		fmt.Fprintf(&b, "perturbation: `%s` (self-test)\n\n", rep.Perturb)
	}
	b.WriteString("| scenario | improved | regressed | neutral | verdict |\n")
	b.WriteString("|---|---:|---:|---:|---|\n")
	for _, e := range rep.Entries {
		switch {
		case e.Error != "":
			fmt.Fprintf(&b, "| %s | – | – | – | error: %s |\n", e.Scenario, e.Error)
		case e.Report == nil:
			fmt.Fprintf(&b, "| %s | – | – | – | refreshed |\n", e.Scenario)
		default:
			verdict := "✅ ok"
			if e.Report.Regressed > 0 {
				verdict = "❌ regressed"
			}
			fmt.Fprintf(&b, "| %s | %d | %d | %d | %s |\n",
				e.Scenario, e.Report.Improved, e.Report.Regressed, e.Report.Neutral, verdict)
		}
	}
	var details []string
	for _, e := range rep.Entries {
		if e.Report == nil {
			continue
		}
		for _, m := range e.Report.Regressions() {
			details = append(details, fmt.Sprintf("- `%s` **%s** %+.4g (%.4g → %.4g)",
				e.Scenario, m.Name, m.Delta, m.Base, m.Cand))
		}
	}
	if len(details) > 0 {
		b.WriteString("\nRegressed metrics:\n\n")
		b.WriteString(strings.Join(details, "\n"))
		b.WriteString("\n")
	}
	return b.String()
}
