package main

import (
	"bytes"
	"flag"
	"os"
	"strings"
	"testing"

	"lfm"
)

var update = flag.Bool("update", false, "rewrite the golden files from current output")

func readFixture(t *testing.T) *lfm.ObsStream {
	t.Helper()
	f, err := os.Open("testdata/obs.jsonl")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	st, err := lfm.ReadObsStream(f)
	if err != nil {
		t.Fatal(err)
	}
	return st
}

// TestRenderGolden locks lfmreport's health report rendering against a
// canned obs stream captured from a deterministic churn-chaos run.
// Regenerate with `go test ./cmd/lfmreport -update` after an intentional
// format change.
func TestRenderGolden(t *testing.T) {
	st := readFixture(t)
	health := st.Health
	if health == nil {
		health = lfm.AnalyzeObs(st.RunObs(), nil)
	}
	var buf bytes.Buffer
	render(&buf, st, health, 60)

	const golden = "testdata/render.golden"
	if *update {
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("render output drifted from %s (run with -update after intentional changes)\ngot:\n%s", golden, buf.String())
	}
}

// TestRenderWithoutHealthLine drops the stream's trailing health line and
// checks the report re-derives the analysis from the snapshots instead of
// rendering an empty verdict.
func TestRenderWithoutHealthLine(t *testing.T) {
	st := readFixture(t)
	st.Health = nil
	health := lfm.AnalyzeObs(st.RunObs(), nil)
	var buf bytes.Buffer
	render(&buf, st, health, 60)
	out := buf.String()
	if !strings.Contains(out, "verdict:") || !strings.Contains(out, "snapshots") {
		t.Fatalf("re-derived report missing verdict:\n%s", out)
	}
}
