package main

import (
	"bytes"
	"flag"
	"os"
	"strings"
	"testing"

	"lfm"
)

var update = flag.Bool("update", false, "rewrite the golden files from current output")

func readFixture(t *testing.T) *lfm.ObsStream {
	t.Helper()
	f, err := os.Open("testdata/obs.jsonl")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	st, err := lfm.ReadObsStream(f)
	if err != nil {
		t.Fatal(err)
	}
	return st
}

// TestRenderGolden locks lfmreport's health report rendering against a
// canned obs stream captured from a deterministic churn-chaos run.
// Regenerate with `go test ./cmd/lfmreport -update` after an intentional
// format change.
func TestRenderGolden(t *testing.T) {
	st := readFixture(t)
	health := st.Health
	if health == nil {
		health = lfm.AnalyzeObs(st.RunObs(), nil)
	}
	var buf bytes.Buffer
	render(&buf, st, health, 60)

	const golden = "testdata/render.golden"
	if *update {
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("render output drifted from %s (run with -update after intentional changes)\ngot:\n%s", golden, buf.String())
	}
}

// TestRenderWithoutHealthLine drops the stream's trailing health line and
// checks the report re-derives the analysis from the snapshots instead of
// rendering an empty verdict.
func TestRenderWithoutHealthLine(t *testing.T) {
	st := readFixture(t)
	st.Health = nil
	health := lfm.AnalyzeObs(st.RunObs(), nil)
	var buf bytes.Buffer
	render(&buf, st, health, 60)
	out := buf.String()
	if !strings.Contains(out, "verdict:") || !strings.Contains(out, "snapshots") {
		t.Fatalf("re-derived report missing verdict:\n%s", out)
	}
}

// TestVerdictExit locks the exit-code contract: unhealthy verdicts exit 3
// so CI catches degraded runs, -allow-unhealthy downgrades that to 0, and
// healthy runs always exit 0.
func TestVerdictExit(t *testing.T) {
	unhealthy := &lfm.RunHealth{Healthy: false}
	healthy := &lfm.RunHealth{Healthy: true}
	cases := []struct {
		name   string
		health *lfm.RunHealth
		allow  bool
		want   int
	}{
		{"unhealthy", unhealthy, false, 3},
		{"unhealthy allowed", unhealthy, true, 0},
		{"healthy", healthy, false, 0},
		{"healthy allowed", healthy, true, 0},
		{"nil health", nil, false, 0},
	}
	for _, c := range cases {
		if got := verdictExit(c.health, c.allow); got != c.want {
			t.Errorf("%s: verdictExit = %d, want %d", c.name, got, c.want)
		}
	}
}

// TestFixtureVerdictExit ties the exit code to the real fixture: the canned
// churn-chaos stream carries its health verdict, and verdictExit must agree
// with it rather than with some stale assumption about the fixture.
func TestFixtureVerdictExit(t *testing.T) {
	st := readFixture(t)
	health := st.Health
	if health == nil {
		health = lfm.AnalyzeObs(st.RunObs(), nil)
	}
	want := 0
	if !health.Healthy {
		want = 3
	}
	if got := verdictExit(health, false); got != want {
		t.Errorf("fixture verdict healthy=%v but verdictExit = %d, want %d", health.Healthy, got, want)
	}
	if got := verdictExit(health, true); got != 0 {
		t.Errorf("-allow-unhealthy must exit 0, got %d", got)
	}
}
