// Command lfmreport renders an observability stream (as written by
// lfmbench -obs-out or ObsConfig.Stream) as a run health report: the
// verdict and rule findings with their evidence windows, the queue-depth
// and utilization timelines as sparklines, and the run's scheduling and
// end-to-end latency quantiles per category.
//
// Usage:
//
//	lfmreport [-json FILE] [-width N] [-allow-unhealthy] OBS.jsonl
//
// The file may be "-" for stdin. When the stream carries no trailing
// health line (a truncated or live capture), the health rules are re-run
// over the streamed snapshots. -json additionally re-exports the health
// report as JSON for machine consumption.
//
// Exit status: 0 healthy, 1 operational error (unreadable or corrupt
// stream), 2 usage, 3 unhealthy verdict. -allow-unhealthy renders an
// unhealthy run without the nonzero exit, for exploratory use on runs that
// are expected to be degraded.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"text/tabwriter"

	"lfm"
)

func main() {
	jsonOut := flag.String("json", "", "also write the health report as JSON to this file (- for stdout)")
	width := flag.Int("width", 60, "character width of the timeline sparklines")
	allowUnhealthy := flag.Bool("allow-unhealthy", false, "exit 0 even when the verdict is unhealthy")
	flag.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: lfmreport [-json FILE] [-width N] [-allow-unhealthy] OBS.jsonl")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() != 1 {
		flag.Usage()
		os.Exit(2)
	}

	in := os.Stdin
	if path := flag.Arg(0); path != "-" {
		f, err := os.Open(path)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		in = f
	}
	st, err := lfm.ReadObsStream(in)
	if err != nil {
		fatal(err)
	}
	health := st.Health
	if health == nil {
		health = lfm.AnalyzeObs(st.RunObs(), nil)
	}
	render(os.Stdout, st, health, *width)

	if *jsonOut != "" {
		w := io.Writer(os.Stdout)
		if *jsonOut != "-" {
			f, err := os.Create(*jsonOut)
			if err != nil {
				fatal(err)
			}
			defer f.Close()
			w = f
		}
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		if err := enc.Encode(health); err != nil {
			fatal(err)
		}
	}

	if code := verdictExit(health, *allowUnhealthy); code != 0 {
		fmt.Fprintf(os.Stderr, "lfmreport: run is unhealthy (worst: %s); pass -allow-unhealthy to suppress\n", health.Worst())
		os.Exit(code)
	}
}

// verdictExit maps the health verdict to the process exit code: 3 for an
// unhealthy run unless -allow-unhealthy downgrades it, 0 otherwise.
func verdictExit(health *lfm.RunHealth, allowUnhealthy bool) int {
	if health != nil && !health.Healthy && !allowUnhealthy {
		return 3
	}
	return 0
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "lfmreport: %v\n", err)
	os.Exit(1)
}

// render prints the report: header, verdict and findings, timelines,
// latency tables, and run counters.
func render(w io.Writer, st *lfm.ObsStream, health *lfm.RunHealth, width int) {
	m := st.Meta
	fin := st.Final
	if fin == nil && len(st.Snapshots) > 0 {
		fin = st.Snapshots[len(st.Snapshots)-1]
	}
	fmt.Fprintf(w, "=== %s / %s: %d workers, seed %d", orDash(m.Workload), orDash(m.Strategy), m.Workers, m.Seed)
	if fin != nil {
		fmt.Fprintf(w, ", makespan %.0fs", float64(fin.At))
	}
	fmt.Fprintf(w, " ===\n")

	verdict := "HEALTHY"
	if !health.Healthy {
		verdict = "UNHEALTHY (worst: " + health.Worst() + ")"
	}
	fmt.Fprintf(w, "\nverdict: %s — %d findings over %d snapshots at %.0fs cadence\n",
		verdict, len(health.Findings), health.Snapshots, float64(health.Cadence))
	if len(health.Findings) > 0 {
		tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
		fmt.Fprintln(tw, "severity\trule\twindow\tdetail")
		for _, f := range health.Findings {
			window := "-"
			if f.WindowEnd > 0 {
				window = fmt.Sprintf("%.0fs-%.0fs", float64(f.WindowStart), float64(f.WindowEnd))
			}
			fmt.Fprintf(tw, "%s\t%s\t%s\t%s\n", f.Severity, f.Rule, window, f.Detail)
		}
		tw.Flush()
	}

	if len(st.Snapshots) > 1 {
		depths := make([]float64, len(st.Snapshots))
		utils := make([]float64, len(st.Snapshots))
		for i, s := range st.Snapshots {
			depths[i] = float64(s.QueueDepth)
			utils[i] = s.Utilization
		}
		peak := 0.0
		for _, d := range depths {
			if d > peak {
				peak = d
			}
		}
		// Compress the whole timeline into the display width (max per
		// bucket), so the sparkline spans the run rather than its tail.
		depths = bucketMax(depths, width)
		utils = bucketMax(utils, width)
		fmt.Fprintf(w, "\nqueue depth |%s| peak %.0f\n", lfm.Sparkline(depths, width), peak)
		fmt.Fprintf(w, "utilization |%s|", lfm.Sparkline(utils, width))
		if fin != nil {
			fmt.Fprintf(w, " final %.0f%%", 100*fin.Utilization)
		}
		fmt.Fprintln(w)
	}

	if fin != nil {
		if fin.SchedLatency.Count > 0 {
			fmt.Fprintln(w, "\nlatency quantiles (seconds; sched = submit→placement, e2e = submit→completion):")
			tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
			fmt.Fprintln(tw, "scope\tsched n\tp50\tp99\tp999\te2e n\tp50\tp99\tp999")
			row := func(scope string, sched, e2e lfm.ObsLatencyQuantiles) {
				fmt.Fprintf(tw, "%s\t%d\t%.3g\t%.3g\t%.3g\t%d\t%.3g\t%.3g\t%.3g\n",
					scope, sched.Count, sched.P50, sched.P99, sched.P999,
					e2e.Count, e2e.P50, e2e.P99, e2e.P999)
			}
			row("pool", fin.SchedLatency, fin.E2ELatency)
			for _, c := range fin.Categories {
				row(c.Category, c.Sched, c.E2E)
			}
			tw.Flush()
		}
		fmt.Fprintf(w, "\ntasks: %d submitted, %d completed, %d failed, %d retries\n",
			fin.Submitted, fin.Completed, fin.Failed, fin.Retries)
		if fin.Offered > 0 {
			fmt.Fprintf(w, "serving: %d offered, %d shed, %d rejected, %d throttled, %d backpressured\n",
				fin.Offered, fin.Shed, fin.Rejected, fin.Throttled, fin.Backpressured)
		}
		fmt.Fprintf(w, "pool: %d workers alive, %d quarantined (%d trips), %.0f of %.0f cores allocated\n",
			fin.WorkersAlive, fin.WorkersQuarantined, fin.QuarantineTrips,
			fin.AllocatedCores, fin.PoolCores)
		if fin.ChaosInjected > 0 || fin.Anomalies > 0 {
			fmt.Fprintf(w, "chaos: %d faults injected, %d anomalies flagged\n",
				fin.ChaosInjected, fin.Anomalies)
		}
	}
}

// bucketMax compresses vals into at most width buckets, keeping each
// bucket's maximum (peaks must survive the compression).
func bucketMax(vals []float64, width int) []float64 {
	if width <= 0 || len(vals) <= width {
		return vals
	}
	out := make([]float64, width)
	for i, v := range vals {
		b := i * width / len(vals)
		if v > out[b] {
			out[b] = v
		}
	}
	return out
}

func orDash(s string) string {
	if s == "" {
		return "-"
	}
	return s
}
