// Command pydeps performs the paper's static dependency analysis (§V-B) on
// real Python source files: it parses the file, finds import statements (and
// dynamic-import calls) at module level or within one function, maps import
// names to distributions via the built-in catalog, and prints the minimal
// requirement list.
//
// Usage:
//
//	pydeps [-func NAME] [-apps DECORATOR] file.py [file2.py ...]
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"lfm"
)

func main() {
	funcName := flag.String("func", "", "analyze only this function's body")
	apps := flag.String("apps", "", "analyze every function with this decorator (e.g. python_app)")
	reqOut := flag.String("o", "", "write the requirement list to this file (requires -func)")
	extract := flag.Bool("extract", false, "also print the function's extracted source (requires -func)")
	flag.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: pydeps [-func NAME | -apps DECORATOR] file.py ...")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() == 0 {
		flag.Usage()
		os.Exit(2)
	}

	ix := lfm.DefaultCatalog()
	exit := 0
	for _, path := range flag.Args() {
		src, err := os.ReadFile(path)
		if err != nil {
			fmt.Fprintf(os.Stderr, "pydeps: %v\n", err)
			exit = 1
			continue
		}
		if err := analyze(path, string(src), ix, *funcName, *apps, *reqOut, *extract); err != nil {
			fmt.Fprintf(os.Stderr, "pydeps: %s: %v\n", path, err)
			exit = 1
		}
	}
	os.Exit(exit)
}

func analyze(path, src string, ix *lfm.PackageIndex, funcName, apps, reqOut string, extract bool) error {
	fmt.Printf("%s:\n", path)
	switch {
	case apps != "":
		reps, err := lfm.AnalyzeAppFunctions(src, ix, apps)
		if err != nil {
			return err
		}
		if len(reps) == 0 {
			fmt.Printf("  no functions decorated with @%s\n", apps)
			return nil
		}
		for name, rep := range reps {
			fmt.Printf("  @%s def %s:\n", apps, name)
			printReport(rep, "    ")
		}
	case funcName != "":
		rep, err := lfm.AnalyzeFunction(src, funcName, ix, nil)
		if err != nil {
			return err
		}
		printReport(rep, "  ")
		if reqOut != "" {
			f, err := os.Create(reqOut)
			if err != nil {
				return err
			}
			if err := lfm.WriteRequirements(f, rep); err != nil {
				f.Close()
				return err
			}
			if err := f.Close(); err != nil {
				return err
			}
			fmt.Printf("  wrote %s\n", reqOut)
		}
		if extract {
			code, err := lfm.ExtractFunctionSource(src, funcName)
			if err != nil {
				return err
			}
			fmt.Printf("  extracted source:\n")
			for _, line := range strings.Split(strings.TrimRight(code, "\n"), "\n") {
				fmt.Printf("  | %s\n", line)
			}
		}
	default:
		rep, err := lfm.AnalyzeSource(src, ix, nil)
		if err != nil {
			return err
		}
		printReport(rep, "  ")
	}
	return nil
}

func printReport(rep *lfm.DependencyReport, indent string) {
	if len(rep.Distributions) > 0 {
		fmt.Printf("%srequirements:\n", indent)
		for _, d := range rep.Distributions {
			fmt.Printf("%s  %s\n", indent, d.String())
		}
	}
	if len(rep.Stdlib) > 0 {
		fmt.Printf("%sstdlib: %v\n", indent, rep.Stdlib)
	}
	for _, u := range rep.Unknown {
		fmt.Printf("%sWARNING: unknown module %q\n", indent, u)
	}
	for _, d := range rep.Dynamic {
		if d.Module == "" {
			fmt.Printf("%sWARNING: line %d: dynamic %s with non-literal argument\n",
				indent, d.Line, d.Call)
		}
	}
	if rep.RelativeImports > 0 {
		fmt.Printf("%s%d relative import(s) resolve within the source tree\n",
			indent, rep.RelativeImports)
	}
}
