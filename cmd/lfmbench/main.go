// Command lfmbench regenerates the tables and figures of the LFM paper's
// evaluation on the built-in cluster simulator.
//
// Usage:
//
//	lfmbench [-quick] [-seed N] [experiment ...]
//	lfmbench -metrics-out FILE [-metrics-timeline FILE] [-metrics-resolution SECS]
//	lfmbench -trace-out FILE [-trace-format json|perfetto]
//	lfmbench -telemetry-out FILE [-telemetry-sweep]
//
// With no arguments every experiment runs in the paper's order. Experiment
// IDs: fig4 fig5 table1 table2 table3 fig6 fig7 fig8 fig9.
//
// The -metrics-out form runs one instrumented Figure-6-style HEP workload
// (auto strategy, 20 four-core ND-CRC workers) and writes the final metric
// values in Prometheus text exposition format ("-" for stdout);
// -metrics-timeline additionally writes the sampled per-metric timelines as
// JSON. Experiments named on the command line still run afterwards.
//
// The -trace-out form runs the same HEP workload with span tracing enabled
// and writes the trace: format "json" (the default) is the lfm-trace span
// store consumed by cmd/lfmtrace, "perfetto" is Chrome trace-event JSON
// loadable at https://ui.perfetto.dev. Both forms may be combined.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"runtime/pprof"
	"strings"
	"time"

	"lfm"
)

func main() {
	quick := flag.Bool("quick", false, "run reduced sweeps (seconds instead of minutes)")
	seed := flag.Int64("seed", 7, "simulation seed")
	list := flag.Bool("list", false, "list experiment IDs and exit")
	metricsOut := flag.String("metrics-out", "", "run an instrumented HEP benchmark and write Prometheus text to this file (- for stdout)")
	metricsTimeline := flag.String("metrics-timeline", "", "with -metrics-out: also write sampled metric timelines as JSON to this file (- for stdout)")
	metricsRes := flag.Float64("metrics-resolution", 1, "sampling resolution in simulated seconds for -metrics-timeline")
	traceOut := flag.String("trace-out", "", "run a traced HEP benchmark and write the span trace to this file (- for stdout)")
	traceFormat := flag.String("trace-format", "json", "trace export format: json (lfm-trace store) or perfetto (Chrome trace-event)")
	chaosProfile := flag.String("chaos-profile", "", "run an HEP benchmark under a canned fault schedule ("+strings.Join(lfm.ChaosProfiles(), ", ")+") with full resilience enabled; exits nonzero on invariant violations")
	chaosSeed := flag.Int64("chaos-seed", 0, "with -chaos-profile: seed fault injection independently of -seed (0 uses -seed)")
	chaosTrace := flag.String("chaos-trace", "", "with -chaos-profile: write the chaos run's span trace to this file (- for stdout)")
	scale := flag.Bool("scale", false, "run the scheduler scale sweep (up to 1M tasks x 50k workers; -quick shrinks it) and write BENCH_scheduler.json")
	scaleOut := flag.String("scale-out", "BENCH_scheduler.json", "with -scale: write the sweep report JSON to this file (- for stdout)")
	scalePoints := flag.String("scale-points", "", "with -scale: override sweep points, e.g. 100000x5000,1000000x50000")
	serveFlag := flag.Bool("serve", false, "run the open-loop serving sweep (Poisson arrivals at fractions of cluster capacity with admission control and load shedding) and write BENCH_serving.json")
	serveOut := flag.String("serve-out", "BENCH_serving.json", "with -serve: write the sweep report JSON to this file (- for stdout)")
	serveLoads := flag.String("serve-loads", "", "with -serve: override sweep load fractions, e.g. 0.5,1,2")
	obsOut := flag.String("obs-out", "", "run with the streaming observability plane and write the snapshot stream as JSONL to this file (- for stdout); combines with -chaos-profile; render it with cmd/lfmreport")
	obsCadence := flag.Float64("obs-cadence", 1, "with -obs-out/-top/-summary-out: snapshot cadence in simulated seconds")
	topFlag := flag.Bool("top", false, "render a live lfmtop dashboard on stderr while the observed benchmark runs")
	summaryOut := flag.String("summary-out", "", "write the unified run summary JSON (stats, sched counters, latency quantiles, health) to this file (- for stdout)")
	archiveOut := flag.String("archive-out", "", "write the run's lfmdiff archive (config, summary, snapshot stream, scheduler events) to this file; combines with -chaos-profile")
	telemetryOut := flag.String("telemetry-out", "", "run with resource time-series telemetry and write the JSONL export to this file (- for stdout); render it with cmd/lfmprof")
	telemetrySweep := flag.Bool("telemetry-sweep", false, "with -telemetry-out: record every paper workload under every strategy and print a utilization/waste table")
	cpuProfile := flag.String("cpuprofile", "", "write a pprof CPU profile of the whole invocation to this file")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: lfmbench [-quick] [-seed N] [experiment ...]\n")
		fmt.Fprintf(os.Stderr, "       lfmbench -metrics-out FILE [-metrics-timeline FILE] [-metrics-resolution SECS]\n")
		fmt.Fprintf(os.Stderr, "       lfmbench -trace-out FILE [-trace-format json|perfetto]\n")
		fmt.Fprintf(os.Stderr, "experiments: %s\n", strings.Join(lfm.ExperimentIDs(), " "))
		flag.PrintDefaults()
	}
	flag.Parse()

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "lfmbench: %v\n", err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "lfmbench: %v\n", err)
			os.Exit(1)
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}

	if *list {
		for _, id := range lfm.ExperimentIDs() {
			fmt.Println(id)
		}
		return
	}

	if *metricsTimeline != "" && *metricsOut == "" {
		fmt.Fprintln(os.Stderr, "lfmbench: -metrics-timeline requires -metrics-out")
		os.Exit(2)
	}
	if *metricsOut != "" {
		if err := runInstrumented(*seed, *metricsRes, *metricsOut, *metricsTimeline); err != nil {
			fmt.Fprintf(os.Stderr, "lfmbench: %v\n", err)
			os.Exit(1)
		}
	}
	if *traceOut != "" {
		if err := runTraced(*seed, *traceOut, *traceFormat); err != nil {
			fmt.Fprintf(os.Stderr, "lfmbench: %v\n", err)
			os.Exit(1)
		}
	}
	obsOpts := &obsOptions{out: *obsOut, cadence: *obsCadence, top: *topFlag, summary: *summaryOut, archive: *archiveOut}
	if *chaosProfile != "" {
		if err := runChaos(*seed, *chaosSeed, *chaosProfile, *chaosTrace, obsOpts); err != nil {
			fmt.Fprintf(os.Stderr, "lfmbench: %v\n", err)
			os.Exit(1)
		}
	} else if obsOpts.enabled() {
		if err := runObs(*seed, obsOpts); err != nil {
			fmt.Fprintf(os.Stderr, "lfmbench: %v\n", err)
			os.Exit(1)
		}
	}
	if *scale {
		if err := runScale(*seed, *quick, *scaleOut, *scalePoints); err != nil {
			fmt.Fprintf(os.Stderr, "lfmbench: %v\n", err)
			os.Exit(1)
		}
	}
	if *serveFlag {
		if err := runServe(*seed, *quick, *serveOut, *serveLoads); err != nil {
			fmt.Fprintf(os.Stderr, "lfmbench: %v\n", err)
			os.Exit(1)
		}
	}
	if *telemetrySweep && *telemetryOut == "" {
		fmt.Fprintln(os.Stderr, "lfmbench: -telemetry-sweep requires -telemetry-out")
		os.Exit(2)
	}
	if *telemetryOut != "" {
		if err := runTelemetry(*seed, *quick, *telemetrySweep, *telemetryOut); err != nil {
			fmt.Fprintf(os.Stderr, "lfmbench: %v\n", err)
			os.Exit(1)
		}
	}
	if (*metricsOut != "" || *traceOut != "" || *chaosProfile != "" || *scale || *serveFlag || *telemetryOut != "" || obsOpts.enabled()) && flag.NArg() == 0 {
		return
	}

	ids := flag.Args()
	if len(ids) == 0 {
		ids = lfm.ExperimentIDs()
	}
	opt := lfm.ExperimentOptions{Quick: *quick, Seed: *seed}
	for _, id := range ids {
		start := time.Now()
		if err := lfm.RenderExperiment(id, opt, os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "lfmbench: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("  (%s generated in %v)\n\n", id, time.Since(start).Round(time.Millisecond))
	}
}

// runInstrumented executes the Figure-6 point (HEP on ND-CRC, 20 four-core
// workers, auto strategy) with full metrics instrumentation and writes the
// requested exports.
func runInstrumented(seed int64, resolution float64, promPath, timelinePath string) error {
	w := lfm.HEPWorkload(seed, 200)
	strategy, err := lfm.StrategyFor("auto", w)
	if err != nil {
		return err
	}
	reg := lfm.NewMetricsRegistry()
	out, err := lfm.RunWorkload(w, lfm.RunConfig{
		SiteName: "ndcrc", Workers: 20,
		WorkerCores: 4, WorkerMemoryMB: 4 * 1024, WorkerDiskMB: 8 * 1024,
		Strategy: strategy, Seed: seed, NoBatchLatency: true,
		Metrics: reg, MetricsResolution: lfm.Time(resolution),
	})
	if err != nil {
		return err
	}
	fmt.Printf("instrumented %s run: %d tasks on 20 4-core ndcrc workers, makespan %.0fs, utilization %.0f%%\n",
		out.Workload, out.TaskCount, float64(out.Makespan), 100*out.Utilization)
	if err := writeTo(promPath, func(f io.Writer) error { return reg.WritePrometheus(f) }); err != nil {
		return err
	}
	if timelinePath != "" {
		if err := writeTo(timelinePath, func(f io.Writer) error { return out.Sampler.WriteJSON(f) }); err != nil {
			return err
		}
	}
	return nil
}

// runTraced executes the same HEP benchmark point with span tracing enabled
// and writes the trace in the requested format.
func runTraced(seed int64, path, format string) error {
	if format != "json" && format != "perfetto" {
		return fmt.Errorf("unknown -trace-format %q (want json or perfetto)", format)
	}
	w := lfm.HEPWorkload(seed, 200)
	strategy, err := lfm.StrategyFor("auto", w)
	if err != nil {
		return err
	}
	tr := &lfm.ExecutionTrace{}
	out, err := lfm.RunWorkload(w, lfm.RunConfig{
		SiteName: "ndcrc", Workers: 20,
		WorkerCores: 4, WorkerMemoryMB: 4 * 1024, WorkerDiskMB: 8 * 1024,
		Strategy: strategy, Seed: seed, NoBatchLatency: true,
		Trace: tr,
	})
	if err != nil {
		return err
	}
	// Status lines go to stderr when the trace itself goes to stdout.
	msg := io.Writer(os.Stdout)
	if path == "-" {
		msg = os.Stderr
	}
	st := tr.Store()
	fmt.Fprintf(msg, "traced %s run: %d tasks, makespan %.0fs, %d spans recorded\n",
		out.Workload, out.TaskCount, float64(out.Makespan), st.Len())
	if err := writeTo(path, func(f io.Writer) error {
		if format == "perfetto" {
			return st.WritePerfetto(f)
		}
		return st.WriteJSON(f)
	}); err != nil {
		return err
	}
	if format == "perfetto" {
		fmt.Fprintf(msg, "open the trace at https://ui.perfetto.dev (or chrome://tracing)\n")
	} else {
		fmt.Fprintf(msg, "analyze with: lfmtrace %s\n", path)
	}
	return nil
}

// runChaos executes the HEP benchmark point under a canned fault schedule
// with every hardening feature enabled, prints the survival report, and
// fails if any scheduler invariant broke. The observability options, when
// enabled, attach the snapshot bus to the same run, so one invocation
// yields both the chaos verdict and the obs stream.
func runChaos(seed, chaosSeed int64, profile, tracePath string, opts *obsOptions) error {
	w := lfm.HEPWorkload(seed, 200)
	strategy, err := lfm.StrategyFor("auto", w)
	if err != nil {
		return err
	}
	sched, err := lfm.ChaosProfile(profile, 10*lfm.Minute)
	if err != nil {
		return err
	}
	var tr *lfm.ExecutionTrace
	if tracePath != "" || opts.archive != "" {
		tr = &lfm.ExecutionTrace{}
	}
	var ocfg *lfm.ObsConfig
	var top *lfm.ObsTop
	cleanup := func() error { return nil }
	if opts.enabled() {
		if ocfg, top, cleanup, err = opts.attach(); err != nil {
			return err
		}
	}
	resilience := lfm.ResilienceConfig{
		HeartbeatInterval:     10,
		SpeculationMultiplier: 2,
		QuarantineThreshold:   3,
		StagingRetries:        3,
	}
	scfg := lfm.ScenarioConfig{
		SiteName: "ndcrc", Workers: 20,
		WorkerCores: 4, WorkerMemoryMB: 4 * 1024, WorkerDiskMB: 8 * 1024,
		Strategy: "auto", Seed: seed, ChaosSeed: chaosSeed, NoBatchLatency: true,
		Resilience: resilience, Faults: sched,
	}
	out, err := lfm.RunWorkload(w, lfm.RunConfig{
		SiteName: "ndcrc", Workers: 20,
		WorkerCores: 4, WorkerMemoryMB: 4 * 1024, WorkerDiskMB: 8 * 1024,
		Strategy: strategy, Seed: seed, ChaosSeed: chaosSeed, NoBatchLatency: true,
		Resilience: resilience,
		Faults:     sched,
		Trace:      tr,
		Obs:        ocfg,
	})
	if cerr := cleanup(); err == nil {
		err = cerr
	}
	if err != nil {
		return err
	}
	msg := io.Writer(os.Stdout)
	if tracePath == "-" || opts.out == "-" || opts.summary == "-" {
		msg = os.Stderr
	}
	fmt.Fprintf(msg, "chaos %q over %s: %d/%d tasks completed (%d failed), makespan %.0fs\n",
		profile, out.Workload, out.Stats.Completed, out.TaskCount, out.Failed, float64(out.Makespan))
	fmt.Fprintf(msg, "  %s\n", out.Chaos.Summary())
	if rs := out.Stats.Resilience; rs != nil {
		fmt.Fprintf(msg, "  detections: %d (mean latency %.1fs)  speculation: %d launched / %d won  staging retries: %d  quarantines: %d\n",
			rs.DetectionDelays.N(), rs.DetectionDelays.Mean(),
			rs.SpecLaunched, rs.SpecWins, rs.StagingRetries, rs.Quarantines)
	}
	if out.ProvisionFailures > 0 {
		fmt.Fprintf(msg, "  provisioning rejections: %d (last: %s)\n", out.ProvisionFailures, out.ProvisionError)
	}
	if tracePath != "" {
		if err := writeTo(tracePath, func(f io.Writer) error { return tr.Store().WriteJSON(f) }); err != nil {
			return err
		}
		fmt.Fprintf(msg, "  analyze with: lfmtrace %s\n", tracePath)
	}
	if err := opts.writeArchive(out, scfg, w, msg); err != nil {
		return err
	}
	if opts.enabled() {
		if err := opts.finish(out, top, msg); err != nil {
			return err
		}
	}
	if len(out.Chaos.Violations) > 0 {
		return fmt.Errorf("%d invariant violations: %v", len(out.Chaos.Violations), out.Chaos.Violations)
	}
	return nil
}

func writeTo(path string, write func(io.Writer) error) error {
	if path == "-" {
		return write(os.Stdout)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
