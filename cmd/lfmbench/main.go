// Command lfmbench regenerates the tables and figures of the LFM paper's
// evaluation on the built-in cluster simulator.
//
// Usage:
//
//	lfmbench [-quick] [-seed N] [experiment ...]
//
// With no arguments every experiment runs in the paper's order. Experiment
// IDs: fig4 fig5 table1 table2 table3 fig6 fig7 fig8 fig9.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"lfm"
)

func main() {
	quick := flag.Bool("quick", false, "run reduced sweeps (seconds instead of minutes)")
	seed := flag.Int64("seed", 7, "simulation seed")
	list := flag.Bool("list", false, "list experiment IDs and exit")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: lfmbench [-quick] [-seed N] [experiment ...]\n")
		fmt.Fprintf(os.Stderr, "experiments: %s\n", strings.Join(lfm.ExperimentIDs(), " "))
		flag.PrintDefaults()
	}
	flag.Parse()

	if *list {
		for _, id := range lfm.ExperimentIDs() {
			fmt.Println(id)
		}
		return
	}

	ids := flag.Args()
	if len(ids) == 0 {
		ids = lfm.ExperimentIDs()
	}
	opt := lfm.ExperimentOptions{Quick: *quick, Seed: *seed}
	for _, id := range ids {
		start := time.Now()
		if err := lfm.RenderExperiment(id, opt, os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "lfmbench: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("  (%s generated in %v)\n\n", id, time.Since(start).Round(time.Millisecond))
	}
}
