package main

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"lfm"
)

// servePoint is one open-loop sweep point: a Poisson arrival stream offered
// at Load × cluster capacity for the window, with the frontend's verdict.
type servePoint struct {
	// Load is the offered load as a fraction of cluster capacity; Rate the
	// resulting arrival rate in tasks per simulated second.
	Load float64 `json:"load"`
	Rate float64 `json:"rate_hz"`

	Offered       int `json:"offered"`
	Accepted      int `json:"accepted"`
	Shed          int `json:"shed"`
	Rejected      int `json:"rejected"`
	Throttled     int `json:"throttled"`
	Backpressured int `json:"backpressured"`
	Completed     int `json:"completed"`
	Failed        int `json:"failed"`
	PeakInflight  int `json:"peak_inflight"`

	// AcceptFraction is accepted/offered; E2E quantiles are
	// arrival→completion seconds over the accepted work — the headline
	// claim is that they stay bounded past saturation because excess load
	// is shed at admission instead of queued forever.
	AcceptFraction float64 `json:"accept_fraction"`
	E2EP50         float64 `json:"e2e_p50"`
	E2EP99         float64 `json:"e2e_p99"`
	E2EP999        float64 `json:"e2e_p999"`
	Makespan       float64 `json:"makespan"`
}

// serveReport is the BENCH_serving.json document.
type serveReport struct {
	SchemaVersion  int     `json:"schema_version"`
	Workers        int     `json:"workers"`
	CoresPerWorker int     `json:"cores_per_worker"`
	CapacityHz     float64 `json:"capacity_hz"`
	Window         float64 `json:"window_s"`
	MaxInflight    int     `json:"max_inflight"`
	ShedWatermark  int     `json:"shed_watermark"`
	Seed           int64   `json:"seed"`
	// Deterministic records that re-running one sweep point with the same
	// seed reproduced a byte-identical serving report.
	Deterministic bool         `json:"deterministic"`
	Points        []servePoint `json:"points"`
}

// serveOnce executes one open-loop point: a single non-cooperative Poisson
// tenant offering rate tasks/s for window seconds against 20 four-core
// ND-CRC workers.
func serveOnce(seed int64, rate, window float64) (*lfm.Outcome, error) {
	// Enough 1-core scale tasks (uniform 10–30 s) to cover the offered
	// stream with slack; the feed just never runs dry inside the window.
	tasks := int(rate*window)*2 + 64
	w := lfm.ScaleWorkload(seed, tasks, 8)
	strategy, err := lfm.StrategyFor("auto", w)
	if err != nil {
		return nil, err
	}
	return lfm.RunWorkload(w, lfm.RunConfig{
		SiteName: "ndcrc", Workers: 20,
		WorkerCores: 4, WorkerMemoryMB: 4 * 1024, WorkerDiskMB: 8 * 1024,
		Strategy: strategy, Seed: seed, NoBatchLatency: true,
		Serving: &lfm.ServingConfig{
			Window:        lfm.Time(window),
			MaxInflight:   256,
			ShedWatermark: 192,
			Tenants: []lfm.ServingTenant{
				{Name: "open", Arrival: &lfm.PoissonArrivals{Rate: rate}},
			},
		},
	})
}

// runServe sweeps offered load across cluster capacity, open-loop, and
// writes BENCH_serving.json. The sweep demonstrates graceful degradation:
// past saturation the accept fraction falls while accepted-work p99 e2e
// latency stays bounded.
func runServe(seed int64, quick bool, outPath, loadsSpec string) error {
	loads := []float64{0.25, 0.5, 0.75, 1.0, 1.25, 1.5, 2.0}
	window := 600.0
	if quick {
		loads = []float64{0.5, 1.0, 2.0}
		window = 180.0
	}
	if loadsSpec != "" {
		loads = loads[:0]
		for _, s := range strings.Split(loadsSpec, ",") {
			v, err := strconv.ParseFloat(strings.TrimSpace(s), 64)
			if err != nil || v <= 0 {
				return fmt.Errorf("bad -serve-loads entry %q", s)
			}
			loads = append(loads, v)
		}
	}

	// 20 workers × 4 cores over 1-core tasks of mean 20 s ≈ 4 tasks/s.
	const capacity = 20 * 4 / 20.0
	rep := &serveReport{
		SchemaVersion: 1,
		Workers:       20, CoresPerWorker: 4, CapacityHz: capacity,
		Window: window, MaxInflight: 256, ShedWatermark: 192, Seed: seed,
	}

	msg := io.Writer(os.Stdout)
	if outPath == "-" {
		msg = os.Stderr
	}
	fmt.Fprintf(msg, "open-loop serving sweep: %d four-core ndcrc workers, capacity %.1f tasks/s, window %.0fs\n",
		rep.Workers, capacity, window)
	tw := newServeTable(msg)

	var firstServing []byte
	for i, load := range loads {
		rate := load * capacity
		out, err := serveOnce(seed, rate, window)
		if err != nil {
			return err
		}
		sv := out.Serving
		p := servePoint{
			Load: load, Rate: rate,
			Offered: sv.Offered, Accepted: sv.Accepted,
			Shed: sv.Shed, Rejected: sv.Rejected, Throttled: sv.Throttled,
			Backpressured: sv.Backpressured,
			Completed:     sv.Completed, Failed: sv.Failed,
			PeakInflight: sv.PeakInflight,
			E2EP50:       sv.E2E.P50, E2EP99: sv.E2E.P99, E2EP999: sv.E2E.P999,
			Makespan: float64(out.Makespan),
		}
		if sv.Offered > 0 {
			p.AcceptFraction = float64(sv.Accepted) / float64(sv.Offered)
		}
		rep.Points = append(rep.Points, p)
		tw.row(p)

		if i == len(loads)-1 {
			// Determinism check on the heaviest point: a second run with
			// the same seed must reproduce the serving report byte for byte.
			firstServing, err = json.Marshal(sv)
			if err != nil {
				return err
			}
			out2, err := serveOnce(seed, rate, window)
			if err != nil {
				return err
			}
			second, err := json.Marshal(out2.Serving)
			if err != nil {
				return err
			}
			rep.Deterministic = string(firstServing) == string(second)
			if !rep.Deterministic {
				return fmt.Errorf("open-loop run is not deterministic at load %.2f", load)
			}
		}
	}
	tw.flush()
	fmt.Fprintf(msg, "deterministic: %v (heaviest point re-run byte-identical)\n", rep.Deterministic)

	return writeTo(outPath, func(f io.Writer) error {
		b, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			return err
		}
		_, err = f.Write(append(b, '\n'))
		return err
	})
}

// serveTable renders sweep points as an aligned progress table.
type serveTable struct {
	w io.Writer
}

func newServeTable(w io.Writer) *serveTable {
	fmt.Fprintf(w, "%6s %8s %8s %8s %6s %6s %6s %9s %9s\n",
		"load", "offered", "accepted", "shed", "rej", "thr", "peak", "p50 e2e", "p99 e2e")
	return &serveTable{w: w}
}

func (t *serveTable) row(p servePoint) {
	fmt.Fprintf(t.w, "%5.2fx %8d %8d %8d %6d %6d %6d %8.1fs %8.1fs\n",
		p.Load, p.Offered, p.Accepted, p.Shed, p.Rejected, p.Throttled,
		p.PeakInflight, p.E2EP50, p.E2EP99)
}

func (t *serveTable) flush() {}
