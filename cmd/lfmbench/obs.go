package main

import (
	"fmt"
	"io"
	"os"

	"lfm"
)

// obsOptions gathers the observability flags shared by the chaos and
// standalone obs runs.
type obsOptions struct {
	out     string  // -obs-out: JSONL stream destination ("-" for stdout)
	cadence float64 // -obs-cadence: snapshot period in simulated seconds
	top     bool    // -top: live lfmtop dashboard on stderr
	summary string  // -summary-out: unified run summary JSON destination
	archive string  // -archive-out: lfmdiff run-archive destination
}

func (o *obsOptions) enabled() bool {
	return o.out != "" || o.top || o.summary != "" || o.archive != ""
}

// attach builds the run's ObsConfig and returns a cleanup that flushes and
// closes whatever the stream writes to. The dashboard renders to stderr so
// a stdout stream stays parseable.
func (o *obsOptions) attach() (*lfm.ObsConfig, *lfm.ObsTop, func() error, error) {
	cfg := &lfm.ObsConfig{Cadence: lfm.Time(o.cadence)}
	cleanup := func() error { return nil }
	if o.out != "" {
		if o.out == "-" {
			cfg.Stream = os.Stdout
		} else {
			f, err := os.Create(o.out)
			if err != nil {
				return nil, nil, nil, err
			}
			cfg.Stream = f
			cleanup = f.Close
		}
	}
	var top *lfm.ObsTop
	if o.top {
		top = &lfm.ObsTop{W: os.Stderr}
		cfg.OnSnapshot = top.OnSnapshot
	}
	return cfg, top, cleanup, nil
}

// finish renders the final dashboard frame, writes the summary document,
// and prints the health verdict.
func (o *obsOptions) finish(out *lfm.Outcome, top *lfm.ObsTop, msg io.Writer) error {
	if top != nil && out.Obs != nil {
		top.Final(out.Obs.Final)
		fmt.Fprintln(os.Stderr)
	}
	if o.summary != "" {
		if err := writeTo(o.summary, out.WriteSummaryJSON); err != nil {
			return err
		}
	}
	if h := out.Health; h != nil {
		verdict := "healthy"
		if !h.Healthy {
			verdict = "UNHEALTHY (worst: " + h.Worst() + ")"
		}
		fmt.Fprintf(msg, "  health: %s, %d findings over %d snapshots\n",
			verdict, len(h.Findings), h.Snapshots)
		for _, f := range h.Findings {
			fmt.Fprintf(msg, "    [%s] %s: %s\n", f.Severity, f.Rule, f.Detail)
		}
		if o.out != "" && o.out != "-" {
			fmt.Fprintf(msg, "  render the report with: lfmreport %s\n", o.out)
		}
	}
	return nil
}

// writeArchive builds and writes the run's lfmdiff archive (satisfying
// `lfmbench -archive-out`): header config echo, outcome digest, and the
// scheduler event stream when a trace was attached.
func (o *obsOptions) writeArchive(out *lfm.Outcome, cfg lfm.ScenarioConfig, w *lfm.Workload, msg io.Writer) error {
	if o.archive == "" {
		return nil
	}
	digest, err := lfm.ScenarioOutcomeDigest(out, w.Tasks)
	if err != nil {
		return err
	}
	arch := lfm.BuildRunArchive(out, cfg, lfm.RunArchiveOptions{Digest: digest, Events: true})
	data, err := lfm.WriteRunArchive(arch)
	if err != nil {
		return err
	}
	if err := os.WriteFile(o.archive, data, 0o644); err != nil {
		return err
	}
	fmt.Fprintf(msg, "  archive -> %s (%d bytes, %d events); compare with: lfmdiff compare\n",
		o.archive, len(data), len(arch.Events))
	return nil
}

// runObs executes the HEP benchmark point (no faults) with the streaming
// observability plane attached — the quiet-run counterpart of runChaos for
// -obs-out / -top / -summary-out / -archive-out without -chaos-profile.
func runObs(seed int64, opts *obsOptions) error {
	w := lfm.HEPWorkload(seed, 200)
	strategy, err := lfm.StrategyFor("auto", w)
	if err != nil {
		return err
	}
	ocfg, top, cleanup, err := opts.attach()
	if err != nil {
		return err
	}
	scfg := lfm.ScenarioConfig{
		SiteName: "ndcrc", Workers: 20,
		WorkerCores: 4, WorkerMemoryMB: 4 * 1024, WorkerDiskMB: 8 * 1024,
		Strategy: "auto", Seed: seed, NoBatchLatency: true,
	}
	var tr *lfm.ExecutionTrace
	if opts.archive != "" {
		tr = &lfm.ExecutionTrace{}
	}
	out, err := lfm.RunWorkload(w, lfm.RunConfig{
		SiteName: "ndcrc", Workers: 20,
		WorkerCores: 4, WorkerMemoryMB: 4 * 1024, WorkerDiskMB: 8 * 1024,
		Strategy: strategy, Seed: seed, NoBatchLatency: true,
		Obs: ocfg, Trace: tr,
	})
	if cerr := cleanup(); err == nil {
		err = cerr
	}
	if err != nil {
		return err
	}
	msg := io.Writer(os.Stdout)
	if opts.out == "-" || opts.summary == "-" {
		msg = os.Stderr
	}
	fin := out.Obs.Final
	fmt.Fprintf(msg, "observed %s run: %d tasks, makespan %.0fs, %d snapshot boundaries, sched p99 %.3gs, e2e p99 %.3gs\n",
		out.Workload, out.TaskCount, float64(out.Makespan), out.Obs.Boundaries,
		fin.SchedLatency.P99, fin.E2ELatency.P99)
	if err := opts.writeArchive(out, scfg, w, msg); err != nil {
		return err
	}
	return opts.finish(out, top, msg)
}
