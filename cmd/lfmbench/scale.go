package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime"
	"strings"
	"time"

	"lfm"
)

// scalePoint is one sweep configuration.
type scalePoint struct {
	Tasks   int `json:"tasks"`
	Workers int `json:"workers"`
}

// matcherCost reports one matcher's scheduling work at a sweep point.
type matcherCost struct {
	Rounds             int64   `json:"rounds"`
	TasksExamined      int64   `json:"tasks_examined"`
	CandidatesExamined int64   `json:"candidates_examined"`
	CandidatesPerRound float64 `json:"candidates_per_round"`
	BlockedWakes       int64   `json:"blocked_wakes,omitempty"`
	SchedMillis        float64 `json:"sched_ms"`
	WallMillis         float64 `json:"wall_ms"`
}

// scaleResult is one sweep point's measurements.
type scaleResult struct {
	scalePoint
	Categories int     `json:"categories"`
	Makespan   float64 `json:"sim_makespan_s"`
	Completed  int     `json:"completed"`

	Indexed matcherCost `json:"indexed"`
	// ScanEquivalent is the indexed run's counterfactual: what the linear
	// scan would have examined over the same rounds (no timing, it did not
	// run).
	ScanEquivalent matcherCost `json:"scan_equivalent"`
	// Scan holds the measured cost of actually re-running the point under
	// the linear scan; only present on points small enough to afford it.
	Scan *matcherCost `json:"scan,omitempty"`
	// IdenticalOutput reports whether the scan re-run's outcome and trace
	// JSON were byte-identical to the indexed run's; only present with Scan.
	IdenticalOutput *bool `json:"identical_output,omitempty"`

	// ReductionCandidatesPerRound is scan-equivalent candidates per round
	// divided by indexed candidates per round.
	ReductionCandidatesPerRound float64 `json:"reduction_candidates_per_round"`

	// LegacyHeap is the measured cost of re-running the point on the legacy
	// binary-heap event queue (indexed matcher) — the benchstat-style
	// old-vs-new engine comparison; present on points small enough to
	// afford the re-run.
	LegacyHeap *matcherCost `json:"legacy_heap,omitempty"`
	// EngineIdenticalOutput reports whether the legacy-heap re-run's
	// outcome (and trace, when captured) was byte-identical to the calendar
	// engine's; only present with LegacyHeap.
	EngineIdenticalOutput *bool `json:"engine_identical_output,omitempty"`

	// Obs is the measured cost and latency yield of re-running the point
	// with the streaming observability plane attached; present on points
	// small enough to afford the re-run.
	Obs *obsCost `json:"obs,omitempty"`
}

// obsCost reports the observability re-run at a sweep point: the
// scheduling-latency (submit→placement) quantiles the snapshot bus
// recorded, the re-run's wall time, and its overhead against the obs-off
// run. IdenticalOutput confirms the obs run's outcome JSON was
// byte-identical to the base run's (behavior neutrality at scale).
type obsCost struct {
	SchedLatencyP50  float64 `json:"sched_latency_p50_s"`
	SchedLatencyP99  float64 `json:"sched_latency_p99_s"`
	SchedLatencyP999 float64 `json:"sched_latency_p999_s"`
	E2EP50           float64 `json:"e2e_latency_p50_s"`
	E2EP99           float64 `json:"e2e_latency_p99_s"`
	Boundaries       int     `json:"boundaries"`
	WallMillis       float64 `json:"wall_ms"`
	// OverheadFraction is (obs wall − base wall)/base wall for the same
	// point and seed; the plane targets < 0.05.
	OverheadFraction float64 `json:"overhead_fraction"`
	IdenticalOutput  bool    `json:"identical_output"`
}

// scaleReport is the BENCH_scheduler.json document.
type scaleReport struct {
	SchemaVersion int           `json:"schema_version"`
	GeneratedBy   string        `json:"generated_by"`
	Quick       bool          `json:"quick"`
	Seed        int64         `json:"seed"`
	Points      []scaleResult `json:"points"`
}

const scaleCategories = 8

// scaleRun executes one sweep point under one matcher and engine queue and
// returns the outcome, the trace JSON (only captured when withTrace, to keep
// the big points lean), and the process wall time. A non-nil ocfg attaches
// the observability plane to the run.
func scaleRun(seed int64, p scalePoint, m lfm.Matcher, q lfm.QueueKind, withTrace bool, ocfg *lfm.ObsConfig) (*lfm.Outcome, []byte, time.Duration, error) {
	w := lfm.ScaleWorkload(seed, p.Tasks, scaleCategories)
	// The fixed "guess" label keeps Strategy.Next O(1) so the measurement
	// isolates matcher cost; "auto" recomputes labels from the full
	// observation history on every query, which at this scale dominates the
	// runtime identically under both matchers.
	strategy, err := lfm.StrategyFor("guess", w)
	if err != nil {
		return nil, nil, 0, err
	}
	// A synthetic pool: one 4-core node per worker so the backlog stays
	// several waves deep and every scheduling round has real work.
	site := lfm.Sites()["ndcrc"]
	site.Name = fmt.Sprintf("synthetic-%d", p.Workers)
	site.Nodes = p.Workers
	site.BatchLatency = 0
	site.Jitter = 0
	var tr *lfm.ExecutionTrace
	if withTrace {
		tr = &lfm.ExecutionTrace{}
	}
	// Collect the previous run's garbage outside the timed window: the
	// sweep re-runs points back to back in one process, and inherited GC
	// debt otherwise skews whichever run happens to pay it.
	runtime.GC()
	start := time.Now()
	out, err := lfm.RunWorkload(w, lfm.RunConfig{
		Site: &site, Workers: p.Workers,
		WorkerCores: 4, WorkerMemoryMB: 4 * 1024, WorkerDiskMB: 8 * 1024,
		Strategy: strategy, Seed: seed, NoBatchLatency: true,
		Matcher: m, EventQueue: q, Trace: tr, Obs: ocfg,
	})
	wall := time.Since(start)
	if err != nil {
		return nil, nil, 0, err
	}
	var tb []byte
	if withTrace {
		var buf bytes.Buffer
		if err := tr.Store().WriteJSON(&buf); err != nil {
			return nil, nil, 0, err
		}
		tb = buf.Bytes()
	}
	return out, tb, wall, nil
}

func cost(rounds, tasks, candidates int64, schedNanos int64, wall time.Duration) matcherCost {
	c := matcherCost{
		Rounds:             rounds,
		TasksExamined:      tasks,
		CandidatesExamined: candidates,
		SchedMillis:        float64(schedNanos) / 1e6,
		WallMillis:         float64(wall.Nanoseconds()) / 1e6,
	}
	if rounds > 0 {
		c.CandidatesPerRound = float64(candidates) / float64(rounds)
	}
	return c
}

// runScale sweeps the scheduler over growing backlogs and pools, measures
// the indexed matcher against the linear scan's counterfactual cost,
// re-runs the smallest point under the real scan to byte-verify identical
// output, and writes the JSON report.
// parsePoints parses a "TASKSxWORKERS,..." override list.
func parsePoints(spec string) ([]scalePoint, error) {
	var pts []scalePoint
	for _, part := range strings.Split(spec, ",") {
		var p scalePoint
		if _, err := fmt.Sscanf(part, "%dx%d", &p.Tasks, &p.Workers); err != nil {
			return nil, fmt.Errorf("bad -scale-points entry %q (want TASKSxWORKERS)", part)
		}
		pts = append(pts, p)
	}
	return pts, nil
}

func runScale(seed int64, quick bool, outPath, pointSpec string) error {
	points := []scalePoint{{2000, 128}, {10000, 512}, {100000, 5000}, {1000000, 50000}}
	dualMax := 2000
	// Every pre-existing point re-runs on the legacy heap engine for
	// byte-identity verification and an old-vs-new timing comparison; only
	// the top (million-task) point is calendar-only.
	heapDualMax := 100000
	// Points up to this size also re-run with the observability plane
	// attached, to record scheduling-latency quantiles and measure the
	// plane's wall-clock overhead against the obs-off base run.
	obsDualMax := 100000
	if quick {
		points = []scalePoint{{1000, 64}, {5000, 512}, {20000, 1000}}
		dualMax = 1000
		heapDualMax = 20000
		obsDualMax = 20000
	}
	if pointSpec != "" {
		var err error
		if points, err = parsePoints(pointSpec); err != nil {
			return err
		}
	}
	rep := scaleReport{SchemaVersion: 1, GeneratedBy: "lfmbench -scale", Quick: quick, Seed: seed}
	for _, p := range points {
		dual := p.Tasks <= dualMax
		out, trIdx, wall, err := scaleRun(seed, p, lfm.MatcherIndexed, lfm.QueueCalendar, dual, nil)
		if err != nil {
			return err
		}
		s := out.Sched
		res := scaleResult{
			scalePoint: p,
			Categories: scaleCategories,
			Makespan:   float64(out.Makespan),
			Completed:  out.Stats.Completed,
			Indexed:    cost(s.Passes, s.TasksExamined, s.CandidatesExamined, s.ElapsedNanos, wall),
			ScanEquivalent: cost(s.Passes, s.ScanTasksExamined, s.ScanCandidatesExamined,
				0, 0),
		}
		res.Indexed.BlockedWakes = s.BlockedWakes
		if res.Indexed.CandidatesPerRound > 0 {
			res.ReductionCandidatesPerRound =
				res.ScanEquivalent.CandidatesPerRound / res.Indexed.CandidatesPerRound
		}
		if dual {
			outScan, trScan, wallScan, err := scaleRun(seed, p, lfm.MatcherScan, lfm.QueueCalendar, true, nil)
			if err != nil {
				return err
			}
			ss := outScan.Sched
			sc := cost(ss.Passes, ss.TasksExamined, ss.CandidatesExamined, ss.ElapsedNanos, wallScan)
			res.Scan = &sc
			oi, err := json.Marshal(out)
			if err != nil {
				return err
			}
			os2, err := json.Marshal(outScan)
			if err != nil {
				return err
			}
			same := bytes.Equal(oi, os2) && bytes.Equal(trIdx, trScan)
			res.IdenticalOutput = &same
			if !same {
				return fmt.Errorf("scale point %dx%d: indexed and scan outputs diverge", p.Tasks, p.Workers)
			}
			if ss.CandidatesExamined != s.ScanCandidatesExamined {
				return fmt.Errorf("scale point %dx%d: counterfactual scan cost %d != measured %d",
					p.Tasks, p.Workers, s.ScanCandidatesExamined, ss.CandidatesExamined)
			}
		}
		msg := io.Writer(os.Stdout)
		if outPath == "-" {
			msg = os.Stderr
		}
		if p.Tasks <= heapDualMax {
			outHeap, trHeap, wallHeap, err := scaleRun(seed, p, lfm.MatcherIndexed, lfm.QueueHeap, dual, nil)
			if err != nil {
				return err
			}
			hs := outHeap.Sched
			hc := cost(hs.Passes, hs.TasksExamined, hs.CandidatesExamined, hs.ElapsedNanos, wallHeap)
			res.LegacyHeap = &hc
			oi, err := json.Marshal(out)
			if err != nil {
				return err
			}
			oh, err := json.Marshal(outHeap)
			if err != nil {
				return err
			}
			same := bytes.Equal(oi, oh) && bytes.Equal(trIdx, trHeap)
			res.EngineIdenticalOutput = &same
			if !same {
				return fmt.Errorf("scale point %dx%d: calendar and legacy-heap engine outputs diverge", p.Tasks, p.Workers)
			}
			fmt.Fprintf(msg, "engine %6d tasks x %4d workers: wall calendar %.1fs vs heap %.1fs (%.2fx), identical output\n",
				p.Tasks, p.Workers, wall.Seconds(), wallHeap.Seconds(),
				wallHeap.Seconds()/wall.Seconds())
		}
		if p.Tasks <= obsDualMax {
			// Wall-clock noise (GC pauses, machine jitter across the
			// re-runs in this process) easily exceeds the obs plane's real
			// cost, so the overhead baseline is NOT the first run above:
			// base and obs runs are re-measured as interleaved pairs —
			// order alternating between iterations so slot position
			// cancels — and the per-arm minima compared. Four pairs keep
			// the minima within ~1% of the true walls on a noisy host.
			var outObs *lfm.Outcome
			var wallBase, wallObs time.Duration
			for i := 0; i < 4; i++ {
				arm := func(obs bool) (time.Duration, error) {
					var oc *lfm.ObsConfig
					if obs {
						oc = &lfm.ObsConfig{}
					}
					o, _, w, err := scaleRun(seed, p, lfm.MatcherIndexed, lfm.QueueCalendar, false, oc)
					if obs && err == nil {
						outObs = o
					}
					return w, err
				}
				first, second := false, true
				if i%2 == 1 {
					first, second = true, false
				}
				w1, err := arm(first)
				if err != nil {
					return err
				}
				w2, err := arm(second)
				if err != nil {
					return err
				}
				wb, wo := w1, w2
				if first {
					wb, wo = w2, w1
				}
				if i == 0 || wb < wallBase {
					wallBase = wb
				}
				if i == 0 || wo < wallObs {
					wallObs = wo
				}
			}
			fin := outObs.Obs.Final
			oc := obsCost{
				SchedLatencyP50:  fin.SchedLatency.P50,
				SchedLatencyP99:  fin.SchedLatency.P99,
				SchedLatencyP999: fin.SchedLatency.P999,
				E2EP50:           fin.E2ELatency.P50,
				E2EP99:           fin.E2ELatency.P99,
				Boundaries:       outObs.Obs.Boundaries,
				WallMillis:       float64(wallObs.Nanoseconds()) / 1e6,
				OverheadFraction: (wallObs.Seconds() - wallBase.Seconds()) / wallBase.Seconds(),
			}
			oi, err := json.Marshal(out)
			if err != nil {
				return err
			}
			oo, err := json.Marshal(outObs)
			if err != nil {
				return err
			}
			oc.IdenticalOutput = bytes.Equal(oi, oo)
			res.Obs = &oc
			if !oc.IdenticalOutput {
				return fmt.Errorf("scale point %dx%d: obs-on and obs-off outcomes diverge", p.Tasks, p.Workers)
			}
			fmt.Fprintf(msg, "obs    %6d tasks x %4d workers: sched p50/p99/p999 %.3g/%.3g/%.3gs, wall %.1fs (%+.1f%% vs base), identical output\n",
				p.Tasks, p.Workers, oc.SchedLatencyP50, oc.SchedLatencyP99, oc.SchedLatencyP999,
				wallObs.Seconds(), 100*oc.OverheadFraction)
		}
		rep.Points = append(rep.Points, res)
		fmt.Fprintf(msg, "scale %6d tasks x %4d workers: %d rounds, %.0f candidates/round indexed vs %.0f scan-equivalent (%.0fx), sched %.0fms, run %.1fs\n",
			p.Tasks, p.Workers, res.Indexed.Rounds, res.Indexed.CandidatesPerRound,
			res.ScanEquivalent.CandidatesPerRound, res.ReductionCandidatesPerRound,
			res.Indexed.SchedMillis, wall.Seconds())
	}
	return writeTo(outPath, func(f io.Writer) error {
		enc := json.NewEncoder(f)
		enc.SetIndent("", "  ")
		return enc.Encode(&rep)
	})
}
