package main

import (
	"fmt"
	"io"
	"os"
	"text/tabwriter"

	"lfm"
)

// telemetryPoint is one workload in the utilization sweep.
type telemetryPoint struct {
	name    string
	site    string
	workers int
	build   func(seed int64, scale int) *lfm.Workload
	tasks   int // per unit of scale
}

var telemetrySweepPoints = []telemetryPoint{
	{"hep", "ndcrc", 10, lfm.HEPWorkload, 100},
	{"drugscreen", "theta", 8, lfm.DrugScreenWorkload, 16},
	{"genomics", "aspire", 8, lfm.GenomicsWorkload, 16},
}

// runTelemetry executes telemetry-enabled runs and writes their combined
// JSONL export. Without -telemetry-sweep it records one HEP/auto run; with
// it, every paper workload under every strategy, followed by a waste table.
func runTelemetry(seed int64, quick, sweep bool, outPath string) error {
	type row struct {
		workload, strategy string
		util               lfm.TelemetryUtilization
		makespan           lfm.Time
		anomalies          int
	}
	var rows []row
	var recorded []*lfm.RunTelemetry

	record := func(p telemetryPoint, strategy string, scale int) error {
		w := p.build(seed, p.tasks*scale)
		s, err := lfm.StrategyFor(strategy, w)
		if err != nil {
			return err
		}
		out, err := lfm.RunWorkload(w, lfm.RunConfig{
			SiteName: p.site, Workers: p.workers, Seed: seed, NoBatchLatency: true,
			Strategy: s, Telemetry: lfm.DefaultTelemetryConfig(),
		})
		if err != nil {
			return err
		}
		rt := out.Telemetry
		recorded = append(recorded, rt)
		rows = append(rows, row{p.name, s.Name(), rt.Util, out.Makespan, len(rt.Anomalies)})
		return nil
	}

	if sweep {
		scale := 2
		if quick {
			scale = 1
		}
		for _, p := range telemetrySweepPoints {
			for _, strategy := range lfm.StrategyNames() {
				if err := record(p, strategy, scale); err != nil {
					return err
				}
			}
		}
	} else {
		if err := record(telemetrySweepPoints[0], "auto", 1); err != nil {
			return err
		}
	}

	if err := writeTo(outPath, func(f io.Writer) error {
		for _, rt := range recorded {
			if err := rt.WriteJSONL(f); err != nil {
				return err
			}
		}
		return nil
	}); err != nil {
		return err
	}

	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "workload\tstrategy\tmakespan(s)\talloc-core-s\tused-core-s\twaste\tpacking\tanomalies")
	for _, r := range rows {
		fmt.Fprintf(tw, "%s\t%s\t%.0f\t%.0f\t%.0f\t%.1f%%\t%.1f%%\t%d\n",
			r.workload, r.strategy, float64(r.makespan),
			r.util.AllocatedCoreSeconds, r.util.UsedCoreSeconds,
			100*r.util.WasteFraction, 100*r.util.PackingEfficiency, r.anomalies)
	}
	if err := tw.Flush(); err != nil {
		return err
	}
	fmt.Printf("telemetry for %d run(s) written to %s\n", len(recorded), outPath)
	return nil
}
