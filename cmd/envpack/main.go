// Command envpack resolves requirement specs against the built-in package
// catalog and packs the resulting environment into a real relocatable
// .tar.gz — the conda + conda-pack pipeline of the paper's §V-C.
//
// Usage:
//
//	envpack -o env.tar.gz "numpy>=1.18" scipy
//	envpack -inspect env.tar.gz
//	envpack -unpack env.tar.gz -dir ./env [-prefix /scratch/env]
package main

import (
	"flag"
	"fmt"
	"os"

	"lfm"
)

func main() {
	out := flag.String("o", "env.tar.gz", "output tarball path")
	name := flag.String("name", "env", "environment name")
	inspect := flag.String("inspect", "", "print the manifest of a packed environment and exit")
	unpack := flag.String("unpack", "", "unpack this environment instead of packing")
	dir := flag.String("dir", "env", "directory for -unpack")
	prefix := flag.String("prefix", "", "relocation prefix applied after -unpack")
	flag.Parse()

	switch {
	case *inspect != "":
		if err := runInspect(*inspect); err != nil {
			fail(err)
		}
	case *unpack != "":
		if err := runUnpack(*unpack, *dir, *prefix); err != nil {
			fail(err)
		}
	default:
		if flag.NArg() == 0 {
			fmt.Fprintln(os.Stderr, "usage: envpack -o out.tar.gz SPEC [SPEC ...]")
			os.Exit(2)
		}
		if err := runPack(*name, *out, flag.Args()); err != nil {
			fail(err)
		}
	}
}

func fail(err error) {
	fmt.Fprintf(os.Stderr, "envpack: %v\n", err)
	os.Exit(1)
}

func runPack(name, out string, specs []string) error {
	ix := lfm.DefaultCatalog()
	res, err := lfm.ResolveEnv(ix, specs...)
	if err != nil {
		return err
	}
	fmt.Printf("resolved %d packages (%d files, %.1f MB installed)\n",
		res.Len(), res.TotalFiles(), float64(res.TotalInstalledBytes())/1e6)
	for _, p := range res.Packages {
		fmt.Printf("  %s\n", p.ID())
	}
	tb, err := lfm.Pack(name, res)
	if err != nil {
		return err
	}
	if err := os.WriteFile(out, tb.Data, 0o644); err != nil {
		return err
	}
	fmt.Printf("packed %s: %d entries, %.1f MB compressed -> %s\n",
		name, tb.Entries, float64(tb.PackedBytes())/1e6, out)
	return nil
}

func runInspect(path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	man, err := lfm.ReadManifest(data)
	if err != nil {
		return err
	}
	fmt.Printf("environment %q (prefix %s)\n", man.Name, man.Prefix)
	fmt.Printf("%d packages, %d files, %.1f MB installed\n",
		len(man.Packages), man.TotalFiles, float64(man.TotalBytes)/1e6)
	for _, p := range man.Packages {
		fmt.Printf("  %s==%s (%d files)\n", p.Name, p.Version, p.FileCount)
	}
	return nil
}

func runUnpack(path, dir, prefix string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	man, err := lfm.Unpack(data, dir)
	if err != nil {
		return err
	}
	fmt.Printf("unpacked %q into %s\n", man.Name, dir)
	if prefix != "" {
		old, err := lfm.Relocate(dir, prefix)
		if err != nil {
			return err
		}
		fmt.Printf("relocated prefix %s -> %s\n", old, prefix)
	}
	return nil
}
