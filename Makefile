# Tier-1 verification for the repo (see ROADMAP.md): build everything,
# vet, and run the full test suite under the race detector.

GO ?= go

.PHONY: check build vet test test-race chaos bench profile obs serve scenarios diff

check: build vet test-race

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

test-race:
	$(GO) test -race ./...

# Deterministic chaos soak: drive the fault-injection engine, the hardening
# features, and the invariant checker under the race detector, then survive
# a full storm schedule end to end via the CLI.
chaos:
	$(GO) test -race -count=1 -run 'Chaos|Resilience|Speculation|Heartbeat|Quarantine|Staging|KillDelay|CrashW|SlowWorker|ProvisionReject' ./internal/...
	$(GO) run ./cmd/lfmbench -chaos-profile storm -seed 7

# Scheduler scale sweep in quick mode: measures the indexed matcher against
# the linear scan's counterfactual cost, byte-verifies identical output on
# the dual-run point AND between the calendar-queue and legacy-heap engines
# (the benchstat-style "engine ..." lines), writes BENCH_scheduler.json, and
# captures a CPU profile (CI uploads both as artifacts). Drop -quick to
# reproduce the committed full-size numbers, including the 1M-task point.
bench:
	$(GO) run ./cmd/lfmbench -scale -quick -scale-out BENCH_scheduler.json -cpuprofile BENCH_cpu.pprof

# Observability smoke: stream a seeded chaos run's snapshot bus to JSONL
# plus the unified summary, re-run it with the same seed and byte-compare
# the two streams (the determinism contract), then render the health
# report. CI uploads OBS_stream.jsonl as an artifact.
obs:
	$(GO) run ./cmd/lfmbench -chaos-profile storm -seed 7 \
		-obs-out OBS_stream.jsonl -summary-out OBS_summary.json
	$(GO) run ./cmd/lfmbench -chaos-profile storm -seed 7 \
		-obs-out OBS_stream.rerun.jsonl -summary-out OBS_summary.rerun.json
	cmp OBS_stream.jsonl OBS_stream.rerun.jsonl
	cmp OBS_summary.json OBS_summary.rerun.json
	rm -f OBS_stream.rerun.jsonl OBS_summary.rerun.json
	$(GO) run ./cmd/lfmreport -allow-unhealthy OBS_stream.jsonl

# Open-loop serving sweep in quick mode: stream Poisson arrivals at
# fractions of cluster capacity through the admission-control frontend,
# verify the heaviest point is byte-deterministic on a same-seed re-run,
# and write BENCH_serving.json (CI uploads it as an artifact). Drop -quick
# for the full seven-point sweep.
serve:
	$(GO) run ./cmd/lfmbench -serve -quick -serve-out BENCH_serving.json

# Telemetry sweep in quick mode: record every paper workload under every
# strategy with resource time-series capture on, write the combined JSONL
# export (CI uploads it as an artifact), and render the profiles and node
# utilization timelines. Drop -quick for the full-size sweep.
profile:
	$(GO) run ./cmd/lfmbench -telemetry-sweep -quick -telemetry-out TELEMETRY_profile.jsonl
	$(GO) run ./cmd/lfmprof TELEMETRY_profile.jsonl

# Scenario regression gate: run every canned scenario and fail on any
# invariant breach (writes SCENARIOS.json; CI uploads it as an artifact),
# then prove bit-exact replay on the diurnal-tenants scenario — record a
# trace, replay it with digest verification, record again and byte-compare
# the two trace files — and finally regenerate the scenario catalog
# (README.md) and regression table (EXPERIMENTS.md), failing on drift.
scenarios:
	$(GO) run ./cmd/lfmscenario run -all -json SCENARIOS.json
	$(GO) run ./cmd/lfmscenario record diurnal-tenants -o SCENARIO_dt.trace
	$(GO) run ./cmd/lfmscenario replay SCENARIO_dt.trace
	$(GO) run ./cmd/lfmscenario record diurnal-tenants -o SCENARIO_dt.rerun.trace
	cmp SCENARIO_dt.trace SCENARIO_dt.rerun.trace
	rm -f SCENARIO_dt.trace SCENARIO_dt.rerun.trace
	$(GO) run ./cmd/lfmscenario export -refresh
	git diff --exit-code README.md EXPERIMENTS.md SCENARIOS.json

# Differential regression gate: re-run every canned scenario and diff its
# archive against the committed baseline (baselines/NAME.lfma), failing on
# any metric regression beyond the noise thresholds. Writes the DiffReport
# JSON artifact and the markdown verdict table (CI uploads the former and
# posts the latter to the job summary). The second invocation is the
# gate's self-test: a deliberately perturbed run MUST fail, proving the
# gate can actually catch a regression. After an intentional behaviour
# change, refresh with `lfmdiff gate -refresh` and review the git diff
# (see baselines/README.md).
diff:
	$(GO) run ./cmd/lfmdiff gate -json DIFF_report.json -md DIFF_report.md
	! $(GO) run ./cmd/lfmdiff gate -perturb workers-halved -scenarios heavy-tail
