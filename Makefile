# Tier-1 verification for the repo (see ROADMAP.md): build everything,
# vet, and run the full test suite under the race detector.

GO ?= go

.PHONY: check build vet test test-race

check: build vet test-race

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

test-race:
	$(GO) test -race ./...
