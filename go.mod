module lfm

go 1.22
