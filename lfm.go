// Package lfm is a Go implementation of Lightweight Function Monitors
// (LFMs) for fine-grained management of function-level workloads, after
// Shaffer et al., "Lightweight Function Monitors for Fine-Grained Management
// in Large Scale Python Applications" (IPDPS 2021).
//
// The library makes individual function invocations — not processes,
// containers, or batch jobs — the unit of resource management:
//
//   - Static dependency analysis of real Python source (AnalyzeFunction)
//     computes the minimal package set a function needs.
//   - Environment packaging (ResolveEnv, Pack) captures that set as a
//     relocatable conda-pack-style tarball for distribution to workers.
//   - A lightweight function monitor measures each invocation's cores,
//     memory, and disk by polling plus process-tree events, and kills
//     invocations that exceed their limits (RunMonitored for real Unix
//     processes; the simulation packages for modeled ones).
//   - Automatic resource labeling (NewAutoStrategy) converges on right-sized
//     allocations so many invocations pack onto each node.
//   - A Parsl-style dataflow layer (NewDFK) runs Go functions as apps with
//     futures and dependency tracking.
//   - A deterministic cluster simulator reproduces every table and figure of
//     the paper's evaluation (RunWorkload, Experiments).
//
// See the examples directory for runnable end-to-end scenarios and
// DESIGN.md for the system inventory.
package lfm

import (
	"context"
	"io"
	"os/exec"
	"time"

	"lfm/internal/alloc"
	"lfm/internal/chaos"
	"lfm/internal/cluster"
	"lfm/internal/core"
	"lfm/internal/deps"
	"lfm/internal/diffobs"
	"lfm/internal/envpack"
	"lfm/internal/experiments"
	"lfm/internal/metrics"
	"lfm/internal/monitor"
	"lfm/internal/obs"
	"lfm/internal/serve"
	"lfm/internal/parsl"
	"lfm/internal/procmon"
	"lfm/internal/pyast"
	"lfm/internal/pypkg"
	"lfm/internal/runarchive"
	"lfm/internal/scenario"
	"lfm/internal/sim"
	"lfm/internal/trace"
	"lfm/internal/tseries"
	"lfm/internal/workloads"
	"lfm/internal/wq"
)

// ---- Resource model ----

// Time is simulated time in seconds.
type Time = sim.Time

// Simulated-time unit constants.
const (
	Millisecond = sim.Millisecond
	Second      = sim.Second
	Minute      = sim.Minute
	Hour        = sim.Hour
)

// Resources is a cores/memory/disk resource vector.
type Resources = monitor.Resources

// MonitorReport is the outcome of one monitored (simulated) invocation.
type MonitorReport = monitor.Report

// ---- Dependency analysis (paper §V-B) ----

// DependencyReport lists a code fragment's imports, their classification,
// and the minimal pinned distribution set.
type DependencyReport = deps.Report

// PackageIndex is a Python package repository (the PyPI/Conda analogue).
type PackageIndex = pypkg.Index

// PythonEnv is an installed package set (the user's Conda environment).
type PythonEnv = pypkg.Environment

// Resolution is a resolved, installable dependency closure.
type Resolution = pypkg.Resolution

// DefaultCatalog returns the built-in package index with the paper's
// Table II package population.
func DefaultCatalog() *PackageIndex { return pypkg.DefaultCatalog() }

// NewEnv returns an empty named Python environment.
func NewEnv(name string) *PythonEnv { return pypkg.NewEnvironment(name) }

// AnalyzeFunction statically analyzes one function in the given Python
// source and reports its minimal dependencies, resolved against env.
func AnalyzeFunction(src, function string, ix *PackageIndex, env *PythonEnv) (*DependencyReport, error) {
	return deps.NewAnalyzer(ix, env).AnalyzeFunction(src, function)
}

// AnalyzeSource analyzes a whole Python module.
func AnalyzeSource(src string, ix *PackageIndex, env *PythonEnv) (*DependencyReport, error) {
	return deps.NewAnalyzer(ix, env).AnalyzeSource(src)
}

// AnalyzeAppFunctions analyzes every function in the module decorated with
// one of the given decorators (e.g. "python_app"), keyed by function name —
// the Parsl integration surface of §V-B.
func AnalyzeAppFunctions(src string, ix *PackageIndex, decorators ...string) (map[string]*DependencyReport, error) {
	return deps.NewAnalyzer(ix, nil).AnalyzeAppFunctions(src, decorators...)
}

// ExtractFunctionSource returns the named function's source text
// (decorators included) from a Python module — the code fragment shipped to
// workers alongside its pickled arguments.
func ExtractFunctionSource(src, function string) (string, error) {
	return pyast.ExtractFunctionSource(src, function)
}

// ResolveEnv resolves requirement specs (pip syntax, e.g. "numpy>=1.18")
// into a full closure using the index.
func ResolveEnv(ix *PackageIndex, reqs ...string) (*Resolution, error) {
	specs := make([]pypkg.Spec, 0, len(reqs))
	for _, r := range reqs {
		s, err := pypkg.ParseSpec(r)
		if err != nil {
			return nil, err
		}
		specs = append(specs, s)
	}
	return ix.Resolve(specs)
}

// WriteRequirements emits a report's pinned distributions in pip
// requirements syntax, the interchange format the analysis tool produces.
func WriteRequirements(w io.Writer, rep *DependencyReport) error {
	return pypkg.WriteRequirements(w, rep.Distributions)
}

// ---- Environment packaging (paper §V-C/D) ----

// Tarball is a packed, relocatable environment archive.
type Tarball = envpack.Tarball

// Pack captures a resolved closure as a real .tar.gz with a manifest,
// placeholder payloads, and a relocatable prefix (conda-pack analogue).
func Pack(name string, res *Resolution) (*Tarball, error) {
	return envpack.DefaultPacker().Pack(name, res)
}

// Manifest is the metadata stored inside every packed environment.
type Manifest = envpack.Manifest

// ReadManifest extracts the manifest from a packed environment without
// unpacking payload files.
func ReadManifest(data []byte) (*Manifest, error) { return envpack.ReadManifest(data) }

// Unpack extracts a packed environment into dir and returns its manifest.
func Unpack(data []byte, dir string) (*Manifest, error) {
	return envpack.Unpack(data, dir)
}

// Relocate rewrites an unpacked environment's prefix (conda-unpack step).
func Relocate(dir, newPrefix string) (oldPrefix string, err error) {
	return envpack.Relocate(dir, newPrefix)
}

// ---- Real process monitoring ----

// ProcessLimits bounds a real monitored process tree.
type ProcessLimits = procmon.Limits

// ProcessReport is the outcome of a real monitored run.
type ProcessReport = procmon.Report

// RunMonitored executes cmd under a real /proc-based LFM with the given
// limits, killing the whole process tree on violation. Linux only.
func RunMonitored(ctx context.Context, cmd *exec.Cmd, limits ProcessLimits, poll time.Duration) (*ProcessReport, error) {
	m := &procmon.Monitor{PollInterval: poll}
	return m.RunLimited(ctx, cmd, limits)
}

// ProcessSample is one live /proc measurement of a monitored process tree.
type ProcessSample = procmon.Sample

// RunMonitoredObserved is RunMonitored with a live observer: onSample
// receives every poll as it is taken (lfmrun's -top view renders from it).
// A nil onSample is equivalent to RunMonitored.
func RunMonitoredObserved(ctx context.Context, cmd *exec.Cmd, limits ProcessLimits, poll time.Duration, onSample func(ProcessSample)) (*ProcessReport, error) {
	m := &procmon.Monitor{PollInterval: poll, Callback: onSample}
	return m.RunLimited(ctx, cmd, limits)
}

// ---- Allocation strategies (paper §VI-B2) ----

// Strategy labels tasks with resource allocations and learns from outcomes.
type Strategy = alloc.Strategy

// NewAutoStrategy returns the automatic first-allocation labeler.
func NewAutoStrategy() *alloc.Auto { return alloc.NewAuto() }

// NewGuessStrategy returns a fixed user-provided label strategy.
func NewGuessStrategy(fixed Resources) Strategy { return &alloc.Guess{Fixed: fixed} }

// NewUnmanagedStrategy returns whole-node unmonitored execution.
func NewUnmanagedStrategy() Strategy { return &alloc.Unmanaged{} }

// NewOracleStrategy returns a perfect-knowledge strategy over per-category
// true peaks (reference only; unobtainable in practice).
func NewOracleStrategy(peaks map[string]Resources) Strategy {
	return &alloc.Oracle{Peaks: peaks, Pad: 0.05}
}

// ---- Dataflow (Parsl analogue) ----

// DFK is the dataflow kernel managing apps, futures, and executors.
type DFK = parsl.DFK

// Future is the eventual result of an app invocation.
type Future = parsl.Future

// App is a registered concurrent function.
type App = parsl.App

// AppFunc is an app body.
type AppFunc = parsl.AppFunc

// NewDFK returns a dataflow kernel running up to maxConcurrent tasks on a
// local thread (goroutine) pool.
func NewDFK(maxConcurrent int) *DFK {
	return parsl.NewDFK(parsl.NewThreadPool(maxConcurrent))
}

// NewRemoteDFK returns a dataflow kernel whose executor forces every call's
// arguments and results through the serialization layer (the paper's
// pickled transferable files), catching non-serializable payloads locally
// before a workload ever reaches a cluster.
func NewRemoteDFK(maxConcurrent int) *DFK {
	return parsl.NewDFK(parsl.NewSerializingExecutor(parsl.NewThreadPool(maxConcurrent)))
}

// CommandResult is the output and resource report of a monitored command app.
type CommandResult = parsl.CommandResult

// MonitoredCommandApp returns an app body that runs program under a real
// /proc-based LFM with the given limits (the bash_app analogue): submit-time
// string arguments become program arguments, and the future resolves to a
// *CommandResult. Linux only.
func MonitoredCommandApp(program string, limits ProcessLimits, poll time.Duration) AppFunc {
	return parsl.MonitoredCommand(program, limits, poll)
}

// ---- Simulation-backed evaluation ----

// Workload is a generated evaluation task set.
type Workload = workloads.Workload

// RunConfig configures one simulated workload execution.
type RunConfig = core.RunConfig

// Outcome summarizes a simulated run.
type Outcome = core.Outcome

// HEPWorkload generates the Coffea HEP analysis workload (§VI-C1).
func HEPWorkload(seed int64, analysisTasks int) *Workload {
	return workloads.HEP(sim.NewRNG(seed), analysisTasks)
}

// DrugScreenWorkload generates the drug screening pipeline (§VI-C2).
func DrugScreenWorkload(seed int64, batches int) *Workload {
	return workloads.DrugScreen(sim.NewRNG(seed), batches)
}

// GenomicsWorkload generates the GDC genomic analysis pipeline (§VI-C3).
func GenomicsWorkload(seed int64, genomes int) *Workload {
	return workloads.Genomics(sim.NewRNG(seed), genomes)
}

// FuncXWorkload generates the funcX ResNet classification benchmark (§VI-C4).
func FuncXWorkload(seed int64, tasks int) *Workload {
	return workloads.FuncXResNet(sim.NewRNG(seed), tasks)
}

// ScaleWorkload generates the synthetic scheduler-stress workload used by
// the scale benchmark: `tasks` independent single-core tasks over
// `categories` categories, all ready at t=0.
func ScaleWorkload(seed int64, tasks, categories int) *Workload {
	return workloads.Scale(sim.NewRNG(seed), tasks, categories)
}

// Site describes a simulated cluster site. Set RunConfig.Site to run on a
// synthetic pool instead of one of the named sites.
type Site = cluster.Site

// Sites returns the built-in site catalog by name.
func Sites() map[string]Site { return cluster.Sites() }

// Matcher selects the master's scheduling implementation: the default
// indexed matcher or the reference linear scan. Both make byte-identical
// placement decisions; they differ only in cost.
type Matcher = wq.Matcher

// Matcher implementations.
const (
	MatcherIndexed = wq.MatcherIndexed
	MatcherScan    = wq.MatcherScan
)

// QueueKind selects the simulation engine's event-queue implementation: the
// default calendar queue or the legacy binary heap kept as its executable
// specification. Both dispatch events byte-identically; they differ only in
// cost.
type QueueKind = sim.QueueKind

// Event-queue implementations.
const (
	QueueCalendar = sim.QueueCalendar
	QueueHeap     = sim.QueueHeap
)

// SchedStats reports the scheduler's work counters for a run (rounds,
// tasks and candidate workers examined, wall-clock time), available on
// Outcome.Sched.
type SchedStats = wq.SchedStats

// RunWorkload executes a workload on a simulated site under a strategy.
func RunWorkload(w *Workload, cfg RunConfig) (*Outcome, error) { return core.Run(w, cfg) }

// StrategyFor builds "oracle", "auto", "guess", or "unmanaged" for a
// workload.
func StrategyFor(name string, w *Workload) (Strategy, error) { return core.StrategyFor(name, w) }

// StrategyNames lists the four evaluation strategies in the paper's order.
func StrategyNames() []string { return core.Strategies() }

// FaaSResult summarizes one simulated funcX batch (§VI-C4).
type FaaSResult = core.FaaSResult

// RunFaaSBatch dispatches a batch of ResNet classification invocations
// through the funcX FaaS layer to an LFM endpoint on the named site, under
// the named strategy.
func RunFaaSBatch(seed int64, site string, workers, tasks int, strategy string) (*FaaSResult, error) {
	return core.RunFuncXBatch(seed, site, workers, tasks, strategy)
}

// ExecutionTrace records a run's scheduler activity when attached to a
// RunConfig. It is a facade over a TraceStore of hierarchical, causally
// linked spans covering every task's full lifecycle (dependency wait, ready
// queue, staging, execution with monitor overhead, output retrieval); the
// flat Events/Spans API of earlier versions is derived from the store.
type ExecutionTrace = wq.Trace

// TraceStore is the span store behind an ExecutionTrace: hierarchical spans,
// causal DAG links, critical-path and bottleneck analysis, and JSON/Perfetto
// export. Obtain one with ExecutionTrace.Store or load a saved trace with
// ReadTrace.
type TraceStore = trace.Store

// TraceSpan is one recorded interval (a task phase, a monitor measurement, a
// worker lifetime).
type TraceSpan = trace.Span

// TraceCriticalPath is the chain of phase spans that determined a run's
// makespan, with a per-phase time breakdown.
type TraceCriticalPath = trace.CriticalPath

// TraceBucket aggregates where one task category's or worker's time went.
type TraceBucket = trace.Bucket

// Failure-domain span kinds recorded by the chaos engine and the hardening
// machinery; everything else in a trace uses task/worker lifecycle kinds.
const (
	TraceKindChaos      = trace.KindChaos
	TraceKindSuspect    = trace.KindSuspect
	TraceKindQuarantine = trace.KindQuarantine
	TraceKindKill       = trace.KindKill
	TraceKindAnomaly    = trace.KindAnomaly
)

// ReadTrace loads a span store saved with TraceStore.WriteJSON.
func ReadTrace(r io.Reader) (*TraceStore, error) { return trace.ReadJSON(r) }

// CategorySummary aggregates monitored behaviour for one task category.
type CategorySummary = wq.CategorySummary

// ---- Failure model & chaos engineering ----

// ResilienceConfig tunes failure detection and mitigation in the scheduler:
// heartbeat-based crash detection, speculative re-execution of stragglers, a
// per-worker quarantine circuit breaker, and staging-transfer retries under
// exponential backoff. The zero value keeps the historical fail-fast
// behaviour; set it on RunConfig.Resilience.
type ResilienceConfig = wq.ResilienceConfig

// ResilienceStats reports what the hardening machinery did during a run
// (detection latencies, speculation wins and waste, staging retries,
// quarantine trips); see Outcome.Stats.Resilience.
type ResilienceStats = wq.ResilienceStats

// ChaosSchedule is a declarative fault plan driven over a run when set on
// RunConfig.Faults: worker crashes and slowdowns, filesystem brownouts and
// outages, staging-transfer failures, provisioning rejections, deferred
// (zombie) kills, and continuous worker churn.
type ChaosSchedule = chaos.Schedule

// ChaosFault is one scheduled injection in a ChaosSchedule.
type ChaosFault = chaos.Fault

// ChaosReport summarizes what the fault engine actually did — injection
// counts by kind plus any invariant violations; see Outcome.Chaos.
type ChaosReport = chaos.Report

// ChaosProfile builds one of the canned fault schedules ("churn",
// "stragglers", "flaky-staging", "blackout", "storm") scaled to a run
// expected to last about horizon.
func ChaosProfile(name string, horizon Time) (*ChaosSchedule, error) {
	return chaos.Profile(name, horizon)
}

// ChaosProfiles lists the canned fault schedule names.
func ChaosProfiles() []string { return chaos.Profiles() }

// ---- Metrics & observability ----

// MetricsRegistry holds named counters, gauges, and histograms. Attach one
// to a RunConfig to instrument a whole simulated run (scheduler, monitors,
// cluster, filesystem, allocation strategy).
type MetricsRegistry = metrics.Registry

// MetricsLabel is one key=value dimension on an instrument.
type MetricsLabel = metrics.Label

// MetricsSampler records counter and gauge timelines at a fixed
// simulated-clock resolution; an instrumented run's Outcome carries one.
type MetricsSampler = metrics.Sampler

// MetricsSeries is the sampled history of one instrument.
type MetricsSeries = metrics.TimeSeries

// MetricsHistogram is a fixed-bucket distribution instrument.
type MetricsHistogram = metrics.Histogram

// NewMetricsRegistry returns an empty metrics registry.
func NewMetricsRegistry() *MetricsRegistry { return metrics.NewRegistry() }

// MetricsTimeBuckets returns the default latency histogram bounds
// (exponential, 0.05s–~27min) used by the built-in instrumentation.
func MetricsTimeBuckets() []float64 { return metrics.DefTimeBuckets() }

// ---- Resource time-series telemetry ----

// TelemetryConfig tunes per-invocation resource time-series capture; attach
// one to RunConfig.Telemetry to record every monitor measurement of a run
// under a bounded memory budget.
type TelemetryConfig = tseries.Config

// RunTelemetry is the recorded product of one telemetry-enabled run:
// per-category usage profiles, per-node utilization timelines, per-attempt
// usage series, and detected anomalies.
type RunTelemetry = tseries.RunTelemetry

// TelemetryProfile summarizes one task category's observed resource usage
// (peak percentiles, time-to-peak, mean-over-peak shape) and audits the
// allocation strategy's current label against it.
type TelemetryProfile = tseries.ProfileSummary

// TelemetryNode is one worker node's allocated-versus-used timeline with
// exact core-second and MB-second integrals.
type TelemetryNode = tseries.NodeSummary

// TelemetryAttempt is one task attempt's downsampled usage series plus its
// exact peak and request.
type TelemetryAttempt = tseries.AttemptSummary

// TelemetryAnomaly is one detected runtime anomaly (memory leak slope,
// usage flatline).
type TelemetryAnomaly = tseries.Anomaly

// TelemetryUtilization aggregates cluster-wide allocated-versus-used
// capacity into waste and packing summaries.
type TelemetryUtilization = tseries.UtilizationSummary

// TelemetryDist is a summarized sample distribution (p50/p90/p99/max).
type TelemetryDist = tseries.Dist

// TelemetryPoint is one delta-encoded point of a usage or level series: DT
// since the previous point, componentwise-max usage U over the N merged raw
// measurements, and the OR of their source flags.
type TelemetryPoint = tseries.Point

// DefaultTelemetryConfig returns the default telemetry configuration.
func DefaultTelemetryConfig() *TelemetryConfig { return tseries.DefaultConfig() }

// ReadTelemetry parses a JSONL telemetry export (as written by
// RunTelemetry.WriteJSONL, possibly several runs concatenated).
func ReadTelemetry(r io.Reader) ([]*RunTelemetry, error) { return tseries.ReadJSONL(r) }

// TelemetryExportVersion is the telemetry JSONL schema version;
// ReadTelemetry refuses newer exports with *TelemetryExportVersionError.
const TelemetryExportVersion = tseries.ExportVersion

// TelemetryExportVersionError reports a telemetry export written by a
// newer schema than this reader understands.
type TelemetryExportVersionError = tseries.ExportVersionError

// ---- Streaming run observability ----

// ObsConfig attaches the streaming observability plane to a run: set it on
// RunConfig.Obs to seal deterministic RunSnapshots at a simulated-time
// cadence, stream them as JSONL, and feed a live dashboard — all without
// perturbing the run (outcomes, placements, and traces stay byte-identical).
type ObsConfig = obs.Config

// ObsStreamMeta identifies a run on its obs stream's leading meta line.
type ObsStreamMeta = obs.StreamMeta

// RunSnapshot is the run's state sealed at one cadence boundary: queue
// depth, running/blocked/speculating tasks, pool utilization, scheduler
// round deltas, chaos and quarantine state, and cumulative scheduling
// (submit→placement) and end-to-end (submit→completion) latency quantiles.
type RunSnapshot = obs.Snapshot

// RunObs is a run's retained observability: the decimated snapshot ring
// spanning the whole timeline plus the final snapshot; see Outcome.Obs.
type RunObs = obs.RunObs

// ObsLatencyQuantiles summarizes one latency distribution
// (count/mean/p50/p99/p999/max).
type ObsLatencyQuantiles = obs.LatencyQuantiles

// RunHealth is the rule-driven end-of-run health report; see
// Outcome.Health and cmd/lfmreport.
type RunHealth = obs.Health

// HealthFinding is one health-rule hit with its evidence window.
type HealthFinding = obs.Finding

// HealthConfig tunes the health rules' thresholds and optional latency
// SLOs; set it on ObsConfig.Health.
type HealthConfig = obs.HealthConfig

// ObsStream is a parsed obs JSONL stream (meta, snapshots, final, health).
type ObsStream = obs.Stream

// ObsTop is the lfmtop-style live terminal dashboard; wire its OnSnapshot
// method as ObsConfig.OnSnapshot.
type ObsTop = obs.Top

// RunSummary is the unified single-document summary of a run (headline
// stats, scheduler work, telemetry waste, latency quantiles, health);
// rendered by Outcome.WriteSummaryJSON.
type RunSummary = core.RunSummary

// ReadObsStream parses an obs JSONL stream written via ObsConfig.Stream.
func ReadObsStream(r io.Reader) (*ObsStream, error) { return obs.ReadStream(r) }

// ObsStreamVersion is the obs JSONL stream schema version; ReadObsStream
// refuses newer streams with *ObsStreamVersionError.
const ObsStreamVersion = obs.StreamVersion

// ObsStreamVersionError reports an obs stream written by a newer schema
// than this reader understands.
type ObsStreamVersionError = obs.StreamVersionError

// SummaryVersion is the unified summary document's schema version
// (RunSummary.SchemaVersion).
const SummaryVersion = core.SummaryVersion

// AnalyzeObs runs the health rules over a run's retained snapshots. A nil
// cfg uses the default thresholds.
func AnalyzeObs(ro *RunObs, cfg *HealthConfig) *RunHealth { return obs.Analyze(ro, cfg) }

// Sparkline renders vals as a fixed-width unicode sparkline (the lfmtop
// queue-depth chart).
func Sparkline(vals []float64, width int) string { return obs.Sparkline(vals, width) }

// Bar renders a 0..1 fraction as a fixed-width block bar (the lfmtop
// utilization gauge).
func Bar(frac float64, width int) string { return obs.Bar(frac, width) }

// ---- Open-loop serving ----

// ServingConfig drives a run open-loop: set it on RunConfig.Serving to
// stream tasks in from per-tenant arrival processes under admission
// control, token-bucket rate limits, fair-share load shedding, and
// cooperative backpressure instead of submitting everything at t=0.
type ServingConfig = serve.Config

// ServingTenant configures one traffic source of a serving run: its
// arrival process, fair-share weight, shed priority, rate limit, and
// whether it cooperates with backpressure.
type ServingTenant = serve.TenantConfig

// ServingReport is the frontend's end-of-run accounting: offered vs
// accepted/rejected/shed/throttled, per-tenant breakdowns, and
// arrival→completion latency quantiles; see Outcome.Serving.
type ServingReport = serve.Report

// ServingTenantReport is one tenant's slice of the ServingReport.
type ServingTenantReport = serve.TenantReport

// Overload is the typed error describing why the frontend turned an
// arrival away (throttled, shed, queue-full, dep-dropped).
type Overload = serve.Overload

// Arrival generates deterministic inter-arrival gaps for a serving
// tenant; implementations include PoissonArrivals, DiurnalArrivals,
// BurstArrivals, and TraceArrivals.
type Arrival = workloads.Arrival

// PoissonArrivals is a memoryless constant-rate arrival process.
type PoissonArrivals = workloads.Poisson

// DiurnalArrivals modulates a base rate sinusoidally (day/night load).
type DiurnalArrivals = workloads.Diurnal

// BurstArrivals alternates calm and burst phases (correlated bursts).
type BurstArrivals = workloads.Burst

// TraceArrivals replays a recorded gap sequence exactly.
type TraceArrivals = workloads.TraceReplay

// ---- Scenario harness & trace replay ----

// Scenario is one canned, seeded, self-describing regression scenario: a
// workload generator composed with a chaos profile, resilience config, and
// serving settings, plus its own invariants and headline metrics. The
// cmd/lfmscenario CLI drives the registry; `make scenarios` runs the suite
// as a regression gate.
type Scenario = scenario.Scenario

// ScenarioSpec is one materialized, runnable scenario instance.
type ScenarioSpec = scenario.Spec

// ScenarioResult is one scenario run's deterministic record: summary,
// headline metrics, and per-invariant verdicts.
type ScenarioResult = scenario.Result

// ScenarioMetric is one deterministic headline number of a scenario run.
type ScenarioMetric = scenario.Metric

// ScenarioInvariant is one scenario-specific assertion checked after a run.
type ScenarioInvariant = scenario.Invariant

// ScenarioInvariantResult is one invariant's verdict on one run.
type ScenarioInvariantResult = scenario.InvariantResult

// ScenarioConfig is the serializable slice of RunConfig a scenario (and a
// trace header) carries: pool shape, strategy name, seeds, resilience,
// fault schedule, telemetry — everything behavioural, nothing attached.
type ScenarioConfig = core.ScenarioConfig

// ScenarioServingShape is the serializable description of a scenario's
// open-loop serving layer.
type ScenarioServingShape = scenario.ServingShape

// ScenarioTenantShape describes one serving tenant of a scenario.
type ScenarioTenantShape = scenario.TenantShape

// ScenarioTraceError is the typed error for every way a scenario trace can
// fail to load or verify: bad-format, bad-version, corrupt, or
// digest-mismatch.
type ScenarioTraceError = scenario.TraceError

// ScenarioTraceHeader is the first line of a scenario trace: format tag,
// version, and the serializable run configuration.
type ScenarioTraceHeader = scenario.TraceHeader

// ScenarioReplay is a finished trace replay: the reconstructed run plus the
// recorded and recomputed outcome digests.
type ScenarioReplay = scenario.ReplayOutcome

// Scenarios lists the registered scenario names, sorted.
func Scenarios() []string { return scenario.Names() }

// ScenarioByName returns the named canned scenario.
func ScenarioByName(name string) (*Scenario, error) { return scenario.Get(name) }

// AllScenarios returns every registered scenario, sorted by name.
func AllScenarios() []*Scenario { return scenario.All() }

// ReplayScenarioTrace decodes a recorded scenario trace and re-runs it
// byte-identically; check ScenarioReplay.Verify for divergence. The
// optional tr records the replay's scheduler event stream.
func ReplayScenarioTrace(data []byte, tr *ExecutionTrace) (*ScenarioReplay, error) {
	return scenario.ReplayTrace(data, tr)
}

// ScenarioOutcomeDigest fingerprints a run for replay verification: a
// SHA-256 over the deterministic summary plus every task's terminal state
// and timestamps.
func ScenarioOutcomeDigest(out *Outcome, tasks []*wq.Task) (string, error) {
	return scenario.OutcomeDigest(out, tasks)
}

// ScenarioCatalog renders the registry as the markdown catalog table
// embedded in README.md.
func ScenarioCatalog() string { return scenario.Catalog() }

// ScenarioRegressionTable renders suite results as the markdown regression
// table embedded in EXPERIMENTS.md.
func ScenarioRegressionTable(results []*ScenarioResult) string {
	return scenario.RegressionTable(results)
}

// RefreshScenarioSection splices generated content between begin/end
// markers in a documentation file, reporting whether the file changed.
func RefreshScenarioSection(path, begin, end, content string) (bool, error) {
	return scenario.RefreshSection(path, begin, end, content)
}

// Marker comments bracketing the generated scenario sections in README.md
// (catalog) and EXPERIMENTS.md (regression table).
const (
	ScenarioCatalogBegin    = scenario.CatalogBegin
	ScenarioCatalogEnd      = scenario.CatalogEnd
	ScenarioRegressionBegin = scenario.RegressionBegin
	ScenarioRegressionEnd   = scenario.RegressionEnd
)

// ---- Experiment reproduction ----

// ExperimentTable is one regenerated table or figure.
type ExperimentTable = experiments.Table

// ExperimentOptions tunes experiment scale and seeding.
type ExperimentOptions = experiments.Options

// ExperimentIDs lists every reproducible table and figure.
func ExperimentIDs() []string { return experiments.IDs() }

// RunExperiment regenerates one of the paper's tables or figures.
func RunExperiment(id string, opt ExperimentOptions) (*ExperimentTable, error) {
	d, ok := experiments.Registry()[id]
	if !ok {
		return nil, &UnknownExperimentError{ID: id}
	}
	return d(opt)
}

// RenderExperiment runs an experiment and writes its table to w.
func RenderExperiment(id string, opt ExperimentOptions, w io.Writer) error {
	tab, err := RunExperiment(id, opt)
	if err != nil {
		return err
	}
	tab.Render(w)
	return nil
}

// UnknownExperimentError reports an experiment ID outside ExperimentIDs.
type UnknownExperimentError struct{ ID string }

func (e *UnknownExperimentError) Error() string {
	return "lfm: unknown experiment " + e.ID + " (see ExperimentIDs)"
}

// ---- Differential observability (run archives + lfmdiff) ----

// RunArchive is the versioned, self-contained run artifact the diff layer
// compares: header (config, seed, digest), unified summary, obs snapshot
// stream, scheduler counters, telemetry profiles, bottleneck buckets, and
// optionally the flat scheduler event stream.
type RunArchive = runarchive.Archive

// RunArchiveError is the typed error for every way an archive can fail to
// load; its Reason is one of ArchiveBadFormat/ArchiveBadVersion/
// ArchiveCorrupt.
type RunArchiveError = runarchive.ArchiveError

// RunArchiveOptions parameterize BuildRunArchive.
type RunArchiveOptions = runarchive.BuildOptions

// Archive error reasons and container identity.
const (
	ArchiveBadFormat     = runarchive.BadFormat
	ArchiveBadVersion    = runarchive.BadVersion
	ArchiveCorrupt       = runarchive.Corrupt
	ArchiveFormat        = runarchive.Format
	ArchiveSchemaVersion = runarchive.SchemaVersion
)

// BuildRunArchive assembles an archive from a finished run (attach a trace
// via RunConfig.Trace first for bottleneck attribution and bisection).
func BuildRunArchive(out *Outcome, cfg ScenarioConfig, opt RunArchiveOptions) *RunArchive {
	return runarchive.Build(out, cfg, opt)
}

// WriteRunArchive serializes an archive as JSONL, byte-deterministic for
// identical archives.
func WriteRunArchive(a *RunArchive) ([]byte, error) { return runarchive.Write(a) }

// ReadRunArchive parses and validates an archive; failures are typed
// *RunArchiveError values.
func ReadRunArchive(data []byte) (*RunArchive, error) { return runarchive.Read(data) }

// ScenarioArchiveOptions parameterize RunScenarioArchived.
type ScenarioArchiveOptions = scenario.ArchiveOptions

// RunScenarioArchived executes a canned scenario with the observability
// plane and a scheduler trace attached, returning its result and archive.
func RunScenarioArchived(s *Scenario, opt ScenarioArchiveOptions) (*ScenarioResult, *RunArchive, error) {
	return s.RunArchived(opt)
}

// DiffReport is the structured comparison of two run archives: every
// shared metric classified improved/regressed/neutral plus bottleneck and
// health-finding attribution when anything regressed.
type DiffReport = diffobs.DiffReport

// DiffMetricDelta is one compared metric in a DiffReport.
type DiffMetricDelta = diffobs.MetricDelta

// DiffRunRef identifies one side of a DiffReport.
type DiffRunRef = diffobs.RunRef

// DiffThresholds is the noise model: a delta is neutral when within the
// metric's absolute band OR within Rel of the base value.
type DiffThresholds = diffobs.Thresholds

// DiffDivergence is the first divergent event between two scheduler event
// streams.
type DiffDivergence = diffobs.Divergence

// Diff classification labels.
const (
	DiffImproved  = diffobs.ClassImproved
	DiffRegressed = diffobs.ClassRegressed
	DiffNeutral   = diffobs.ClassNeutral
)

// DefaultDiffThresholds returns the regression gate's stock noise model.
func DefaultDiffThresholds() *DiffThresholds { return diffobs.DefaultThresholds() }

// DiffArchives compares base against cand (nil thresholds = defaults).
func DiffArchives(base, cand *RunArchive, th *DiffThresholds) *DiffReport {
	return diffobs.Diff(base, cand, th)
}

// TraceEvent is one flat scheduler trace event (ExecutionTrace.Events).
type TraceEvent = wq.Event

// BisectEventStreams binary-searches two scheduler event streams to their
// first divergent event (nil when identical).
func BisectEventStreams(a, b []TraceEvent) *DiffDivergence { return diffobs.Bisect(a, b) }

// DiffPerturbation resolves a named gate self-test mutation; the gate runs
// scenarios with it applied and must fail against committed baselines.
func DiffPerturbation(name string) (func(*RunConfig), error) { return diffobs.Perturbation(name) }

// DiffPerturbationNames lists the registered gate perturbations.
func DiffPerturbationNames() []string { return diffobs.PerturbationNames() }
