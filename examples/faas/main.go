// FaaS: the paper's funcX integration (§VI-C4). A serverless function —
// Keras ResNet image classification — is registered with a funcX-style
// service and dispatched in batches to an endpoint whose workers execute
// each invocation inside an LFM instead of a container. With automatic
// labeling the endpoint packs several ~4 GB inference tasks per node; the
// unmanaged baseline dedicates a node per invocation.
//
// Run with: go run ./examples/faas
package main

import (
	"fmt"
	"log"

	"lfm"
)

func main() {
	const workers = 8
	fmt.Printf("funcX ResNet classification on %d EC2 workers (16c/64GB)\n\n", workers)
	fmt.Printf("%-6s  %-10s  %10s  %12s  %8s\n",
		"tasks", "strategy", "batch", "mean latency", "retries")

	for _, tasks := range []int{64, 256} {
		for _, strategy := range lfm.StrategyNames() {
			res, err := lfm.RunFaaSBatch(5, "ec2", workers, tasks, strategy)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("%-6d  %-10s  %10s  %12s  %8d\n",
				tasks, strategy, res.BatchTime.Duration(),
				res.MeanLatency.Duration(), res.Retries)
		}
		fmt.Println()
	}

	fmt.Println("Each invocation carries the serialized function and its dependency")
	fmt.Println("list; the 1.3 GB model environment is staged once per worker and")
	fmt.Println("cached, so steady-state latency is dominated by inference itself.")
}
