// Chaos: will my workflow survive? Run the same HEP workload twice — once on
// a healthy cluster and once under the "storm" fault schedule (continuous
// worker churn, targeted crashes, a straggling node, flaky staging, a
// filesystem brownout, and kill signals that fail) with every hardening
// feature enabled — and compare what came back. The point of the failure
// model is that the answer to "did every task finish?" is yes either way;
// chaos only costs makespan.
//
// Run with: go run ./examples/chaos
package main

import (
	"fmt"
	"log"

	"lfm"
)

func run(faults *lfm.ChaosSchedule) *lfm.Outcome {
	w := lfm.HEPWorkload(43, 60)
	s, err := lfm.StrategyFor("auto", w)
	if err != nil {
		log.Fatal(err)
	}
	out, err := lfm.RunWorkload(w, lfm.RunConfig{
		SiteName: "ndcrc", Workers: 8, Seed: 43, NoBatchLatency: true,
		Strategy: s,
		Resilience: lfm.ResilienceConfig{
			HeartbeatInterval:     10, // suspect a silent worker after 30s
			SpeculationMultiplier: 2,  // back up tasks running 2x the mean
			QuarantineThreshold:   3,  // bench a worker after 3 straight failures
			StagingRetries:        3,  // retry failed transfers under backoff
		},
		Faults: faults,
	})
	if err != nil {
		log.Fatal(err)
	}
	return out
}

func main() {
	storm, err := lfm.ChaosProfile("storm", 8*lfm.Minute)
	if err != nil {
		log.Fatal(err)
	}
	healthy := run(nil)
	stormy := run(storm)

	fmt.Println("will my workflow survive? HEP, 60 analysis tasks, 8 workers:")
	fmt.Printf("  %-8s %4d/%d tasks, makespan %s\n",
		"healthy", healthy.Stats.Completed, healthy.TaskCount, healthy.Makespan.Duration())
	fmt.Printf("  %-8s %4d/%d tasks, makespan %s (%.1fx slower)\n",
		"storm", stormy.Stats.Completed, stormy.TaskCount, stormy.Makespan.Duration(),
		float64(stormy.Makespan)/float64(healthy.Makespan))

	fmt.Printf("\ninjected: %s\n", stormy.Chaos.Summary())

	// Every fault left a fingerprint in the resilience stats.
	if rs := stormy.Stats.Resilience; rs != nil {
		fmt.Println("\nhow the run survived:")
		if n := rs.DetectionDelays.N(); n > 0 {
			fmt.Printf("  heartbeats   suspected %d silent workers after %.1fs mean silence, recovered their tasks\n",
				n, rs.DetectionDelays.Mean())
		}
		if rs.SpecLaunched > 0 {
			fmt.Printf("  speculation  launched %d backup copies, %d beat their straggling original\n",
				rs.SpecLaunched, rs.SpecWins)
		}
		if rs.StagingRetries > 0 {
			fmt.Printf("  staging      retried %d failed transfers under backoff (%d attempts exhausted)\n",
				rs.StagingRetries, rs.StagingFailures)
		}
		if rs.Quarantines > 0 {
			fmt.Printf("  quarantine   benched failing workers %d times\n", rs.Quarantines)
		}
	}
	fmt.Printf("  churn        %d placements lost to dead workers, all resubmitted\n",
		stormy.Stats.LostTasks)

	// The invariant checker ran over the wreckage: every submitted task
	// reached a terminal state and no allocation leaked.
	if len(stormy.Chaos.Violations) > 0 {
		fmt.Printf("\nINVARIANT VIOLATIONS: %v\n", stormy.Chaos.Violations)
	} else {
		fmt.Println("\ninvariants: clean — every task terminated, nothing leaked")
	}
}
