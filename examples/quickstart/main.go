// Quickstart: the LFM pipeline end to end on your laptop.
//
//  1. Statically analyze a Parsl-style Python function for its minimal
//     dependencies (no Python required — the library parses the source).
//  2. Resolve and pack those dependencies into a relocatable tarball.
//  3. Run Go functions as dataflow apps with futures (the Parsl analogue).
//  4. Run a real command under a live /proc-based function monitor.
//
// Run with: go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"
	"os/exec"
	"runtime"
	"time"

	"lfm"
)

const parslScript = `
import parsl
from parsl import python_app

@python_app
def featurize(path):
    import numpy as np
    from sklearn.preprocessing import StandardScaler
    data = np.load(path)
    return StandardScaler().fit_transform(data)
`

func main() {
	// --- 1. minimal dependencies for one function (paper §V-B) ---
	ix := lfm.DefaultCatalog()
	rep, err := lfm.AnalyzeFunction(parslScript, "featurize", ix, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("featurize() needs:")
	for _, d := range rep.Distributions {
		fmt.Printf("  %s\n", d.String())
	}

	// --- 2. resolve + pack the environment (paper §V-C) ---
	reqs := make([]string, len(rep.Distributions))
	for i, d := range rep.Distributions {
		reqs[i] = d.String()
	}
	res, err := lfm.ResolveEnv(ix, append(reqs, "python")...)
	if err != nil {
		log.Fatal(err)
	}
	tb, err := lfm.Pack("featurize-env", res)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\npacked %d packages (%d files, %.0f MB installed) into %.1f MB tarball\n",
		res.Len(), res.TotalFiles(), float64(res.TotalInstalledBytes())/1e6,
		float64(tb.PackedBytes())/1e6)

	// --- 3. dataflow apps with futures (the Parsl model) ---
	dfk := lfm.NewDFK(4)
	defer dfk.Shutdown()
	square := dfk.NewApp("square", func(_ context.Context, args []any) (any, error) {
		n := args[0].(int)
		time.Sleep(10 * time.Millisecond) // simulated work
		return n * n, nil
	})
	total := dfk.NewApp("total", func(_ context.Context, args []any) (any, error) {
		sum := 0
		for _, a := range args {
			sum += a.(int)
		}
		return sum, nil
	})
	futures := make([]any, 8)
	for i := range futures {
		futures[i] = square.Submit(i) // returns immediately
	}
	sum := total.Submit(futures...) // depends on all squares
	v, err := sum.Result()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nsum of squares 0..7 via dataflow futures: %v\n", v)

	// --- 4. a real process under a live LFM ---
	if runtime.GOOS != "linux" {
		fmt.Println("\n(live /proc monitoring requires Linux; skipping)")
		return
	}
	cmd := exec.Command("sh", "-c", "sleep 0.3 & sleep 0.3 & wait")
	prep, err := lfm.RunMonitored(context.Background(), cmd,
		lfm.ProcessLimits{WallTime: 5 * time.Second}, 20*time.Millisecond)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nmonitored a real process tree: wall %v, peak rss %.1f MB, max procs %d\n",
		prep.WallTime.Round(time.Millisecond), float64(prep.PeakRSSBytes)/(1<<20), prep.MaxProcs)
}
