// Genomics: the paper's GDC DNA-Seq pipeline (§VI-C3) on simulated NSCC
// Aspire nodes. The interesting stage is Ensembl VEP annotation, whose
// memory depends on the number of variants in each genome and is heavy
// tailed — so even an "oracle" per-category configuration is imperfect and
// retries appear under every strategy, exactly as the paper reports.
//
// Run with: go run ./examples/genomics
package main

import (
	"fmt"
	"log"

	"lfm"
)

func main() {
	const genomes = 32
	fmt.Printf("GDC DNA-Seq pipeline: %d genomes on 14 NSCC Aspire nodes (24c/96GB)\n\n", genomes)
	fmt.Printf("%-10s  %10s  %8s  %8s\n", "strategy", "makespan", "retries", "failed")

	for _, name := range lfm.StrategyNames() {
		w := lfm.GenomicsWorkload(99, genomes)
		s, err := lfm.StrategyFor(name, w)
		if err != nil {
			log.Fatal(err)
		}
		out, err := lfm.RunWorkload(w, lfm.RunConfig{
			SiteName: "aspire", Workers: 14, Seed: 99, NoBatchLatency: true, Strategy: s,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-10s  %10s  %7.2f%%  %8d\n",
			out.Strategy, out.Makespan.Duration(), out.RetryFraction*100, out.Failed)
	}

	// Show the VEP memory tail that defeats static configuration.
	w := lfm.GenomicsWorkload(99, genomes)
	var min, max float64
	for _, t := range w.Tasks {
		if t.Category != "gen-annotate" {
			continue
		}
		m := t.Spec.TruePeak().MemoryMB
		if min == 0 || m < min {
			min = m
		}
		if m > max {
			max = m
		}
	}
	fmt.Printf("\nVEP annotation memory across genomes: %.1f-%.1f GB (heavy tailed).\n",
		min/1024, max/1024)
	fmt.Println("No fixed label covers that range without waste: the LFM measures,")
	fmt.Println("labels, and retries the rare outliers at full size.")
}
