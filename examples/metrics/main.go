// Metrics: instrument a churn-heavy workload run with the cluster-wide
// metrics registry, then render the sampled core-utilization timeline as an
// ASCII chart and summarize the headline counters and latency distributions.
// Where examples/trace answers "what happened to each task?", this is the
// fleet view: how full the pool was over time, how much of the traffic hit
// worker caches, and where the scheduler lost capacity to churn.
//
// Run with: go run ./examples/metrics
package main

import (
	"fmt"
	"log"
	"strings"

	"lfm"
)

func main() {
	w := lfm.HEPWorkload(11, 120)
	s, err := lfm.StrategyFor("auto", w)
	if err != nil {
		log.Fatal(err)
	}
	reg := lfm.NewMetricsRegistry()
	out, err := lfm.RunWorkload(w, lfm.RunConfig{
		SiteName: "ndcrc", Workers: 8, Seed: 11, NoBatchLatency: true,
		Strategy:        s,
		WorkerChurnMTBF: 90, // pilot jobs die every ~90s on average
		Metrics:         reg, MetricsResolution: 2,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("HEP, %d tasks, 8 workers with churn: makespan %s\n\n",
		out.TaskCount, out.Makespan.Duration())

	// Utilization timeline: allocated vs provisioned cores, averaged into
	// fixed-width columns. The glyph ramp encodes the allocated fraction.
	alloc := out.Sampler.Find("wq_cores_allocated")
	total := out.Sampler.Find("wq_cores_total")
	if alloc == nil || total == nil {
		log.Fatal("metrics: utilization series missing")
	}
	const width = 72
	ramp := []rune(" .:-=+*#%@")
	cols := make([]float64, width) // mean allocated fraction per column
	counts := make([]int, width)
	span := float64(alloc.Points[len(alloc.Points)-1].At)
	for i, p := range alloc.Points {
		cap := total.Points[i].V
		if cap == 0 {
			continue
		}
		col := int(float64(p.At) / span * float64(width-1))
		cols[col] += p.V / cap
		counts[col]++
	}
	var line strings.Builder
	for i := range cols {
		f := 0.0
		if counts[i] > 0 {
			f = cols[i] / float64(counts[i])
		}
		g := int(f * float64(len(ramp)-1))
		line.WriteRune(ramp[g])
	}
	fmt.Println("core utilization over time (@ = pool fully allocated):")
	fmt.Printf("  |%s|\n", line.String())
	dur := out.Makespan.Duration()
	fmt.Printf("  0%*s%s\n\n", width-len(dur)+1, "", dur)

	// Headline counters across the stack.
	c := func(name string, labels ...lfm.MetricsLabel) float64 {
		return reg.Counter(name, labels...).Value()
	}
	fmt.Println("headline counters:")
	fmt.Printf("  placements   %6.0f   retries %4.0f   lost to churn %4.0f\n",
		c("wq_placements_total"), c("wq_retries_total"), c("wq_tasks_lost_total"))
	fmt.Printf("  cache hits   %6.0f   misses  %4.0f   hit ratio %.0f%%\n",
		c("wq_cache_hits_total"), c("wq_cache_misses_total"),
		100*reg.Gauge("wq_cache_hit_ratio").Value())
	fmt.Printf("  staged in    %6.1f GB  returned %5.1f GB\n",
		c("wq_bytes_in_total")/1e9, c("wq_bytes_out_total")/1e9)
	fmt.Printf("  monitor polls %5.0f   proc events %4.0f   kills %2.0f\n",
		c("lfm_polls_total"), c("lfm_proc_events_total"),
		c("lfm_kills_total", lfm.MetricsLabel{Key: "kind", Value: "memory"})+
			c("lfm_kills_total", lfm.MetricsLabel{Key: "kind", Value: "disk"})+
			c("lfm_kills_total", lfm.MetricsLabel{Key: "kind", Value: "cores"}))

	// Latency distributions from the built-in histograms.
	wait := reg.Histogram("wq_task_wait_seconds", lfm.MetricsTimeBuckets())
	exec := reg.Histogram("wq_task_exec_seconds", lfm.MetricsTimeBuckets())
	fmt.Println("\nlatency quantiles (seconds):")
	fmt.Printf("  %-18s p50 %6.1f   p90 %6.1f   max %6.1f\n",
		"queue wait", wait.Quantile(0.5), wait.Quantile(0.9), wait.Max())
	fmt.Printf("  %-18s p50 %6.1f   p90 %6.1f   max %6.1f\n",
		"task execution", exec.Quantile(0.5), exec.Quantile(0.9), exec.Max())

	fmt.Println("\nfor a per-task timeline of the same run, export a span trace with" +
		"\n`lfmbench -trace-out t.json -trace-format perfetto` and open it at" +
		"\nhttps://ui.perfetto.dev (or analyze t.json with cmd/lfmtrace)")
}
