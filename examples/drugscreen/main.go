// Drug screening: the paper's COVID-19 candidate-screening pipeline
// (§VI-C2) on simulated Theta nodes. Each molecule batch flows through
// SMILES canonicalization, three feature extractors, and two TensorFlow
// docking-score models — stages with wildly different resource needs, which
// is exactly where fixed per-task guesses waste 64-core nodes.
//
// The example also runs the §V environment pipeline for the screening
// function: minimal dependency analysis, closure resolution, and packing.
//
// Run with: go run ./examples/drugscreen
package main

import (
	"fmt"
	"log"

	"lfm"
)

const screenFunc = `
@python_app
def screen(smiles_batch):
    import numpy as np
    import pandas as pd
    from rdkit import Chem
    import tensorflow as tf
    mols = [Chem.CanonSmiles(s) for s in smiles_batch]
    return tf.constant(np.array(mols))
`

func main() {
	// Environment pipeline for the screening function.
	ix := lfm.DefaultCatalog()
	rep, err := lfm.AnalyzeFunction(screenFunc, "screen", ix, nil)
	if err != nil {
		log.Fatal(err)
	}
	reqs := []string{"python"}
	for _, d := range rep.Distributions {
		reqs = append(reqs, d.String())
	}
	res, err := lfm.ResolveEnv(ix, reqs...)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("screen() minimal environment: %d packages, %.1f GB installed\n\n",
		res.Len(), float64(res.TotalInstalledBytes())/1e9)

	// The pipeline across strategies on Theta.
	const batches = 32
	fmt.Printf("drug screening: %d molecule batches (%d tasks) on 14 Theta nodes\n\n",
		batches, batches*6)
	fmt.Printf("%-10s  %10s  %8s  %12s\n", "strategy", "makespan", "retries", "peak cores")
	for _, name := range lfm.StrategyNames() {
		w := lfm.DrugScreenWorkload(7, batches)
		s, err := lfm.StrategyFor(name, w)
		if err != nil {
			log.Fatal(err)
		}
		out, err := lfm.RunWorkload(w, lfm.RunConfig{
			SiteName: "theta", Workers: 14, Seed: 7, NoBatchLatency: true, Strategy: s,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-10s  %10s  %7.2f%%  %12.0f\n",
			out.Strategy, out.Makespan.Duration(), out.RetryFraction*100,
			out.Stats.PeakCoresUsed)
	}
	fmt.Println("\nFeature tasks need 1 core / ~1-2 GB; model inference needs ~8 cores /")
	fmt.Println("~20 GB. Fixed 16-core/40 GB guesses fit only a few tasks per node;")
	fmt.Println("automatic labels pack each stage at its own granularity.")
}
