// HEP: the paper's Coffea columnar-analysis workload (§VI-C1) on a
// simulated ND-CRC cluster, comparing all four allocation strategies. This
// reproduces the Figure 6 story: automatic labeling packs eight ~110 MB
// analysis tasks onto each 8-core worker while whole-node execution wastes
// almost the entire machine.
//
// Run with: go run ./examples/hep
package main

import (
	"fmt"
	"log"

	"lfm"
)

func main() {
	const tasks = 200
	fmt.Printf("HEP columnar analysis: %d analysis tasks on 20 ND-CRC workers\n\n", tasks)
	fmt.Printf("%-10s  %10s  %8s  %8s  %10s\n",
		"strategy", "makespan", "retries", "failed", "GB moved")

	for _, name := range lfm.StrategyNames() {
		w := lfm.HEPWorkload(42, tasks)
		s, err := lfm.StrategyFor(name, w)
		if err != nil {
			log.Fatal(err)
		}
		out, err := lfm.RunWorkload(w, lfm.RunConfig{
			SiteName: "ndcrc",
			Workers:  20,
			Seed:     42,
			Strategy: s,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-10s  %10s  %7.2f%%  %8d  %10.1f\n",
			out.Strategy, out.Makespan.Duration(), out.RetryFraction*100,
			out.Failed, float64(out.Stats.BytesIn+out.Stats.BytesOut)/1e9)
	}

	fmt.Println("\nNote: workers arrive through the batch queue (~45-75s), and the")
	fmt.Println("240 MB Conda environment is transferred once per worker and cached.")
}
