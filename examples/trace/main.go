// Trace: record every scheduler event of a workload run — submissions,
// environment transfers, task starts, exhaustion kills, retries, worker
// churn — and render per-attempt spans as an ASCII Gantt chart. This is the
// observability surface a user points at when asking "why was my workflow
// slow?".
//
// Run with: go run ./examples/trace
package main

import (
	"fmt"
	"log"
	"sort"
	"strings"

	"lfm"
)

func main() {
	w := lfm.HEPWorkload(21, 30)
	s, err := lfm.StrategyFor("auto", w)
	if err != nil {
		log.Fatal(err)
	}
	trace := &lfm.ExecutionTrace{}
	out, err := lfm.RunWorkload(w, lfm.RunConfig{
		SiteName: "ndcrc", Workers: 4, Seed: 21, NoBatchLatency: true,
		Strategy: s, Trace: trace,
		WorkerChurnMTBF: 120, // a pilot job dies every ~2 minutes
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("HEP, 30 analysis tasks, 4 workers with churn: makespan %s\n",
		out.Makespan.Duration())
	fmt.Println(trace.Summary())

	// Per-category resource report (what a user would persist and preload).
	fmt.Println("\nper-category monitor report:")
	for _, c := range out.Categories {
		fmt.Printf("  %-10s %3d tasks, peak %s\n", c.Category, c.Tasks, c.MaxObserved())
	}

	// ASCII Gantt of the first 16 task attempts.
	spans := trace.Spans()
	sort.Slice(spans, func(i, j int) bool { return spans[i].Start < spans[j].Start })
	if len(spans) > 16 {
		spans = spans[:16]
	}
	// The axis runs to the latest span edge; open spans (End == -1) only
	// contribute their start.
	var maxEnd float64
	for _, sp := range spans {
		if float64(sp.Start) > maxEnd {
			maxEnd = float64(sp.Start)
		}
		if float64(sp.End) > maxEnd {
			maxEnd = float64(sp.End)
		}
	}
	const width = 60
	if maxEnd <= 0 {
		fmt.Println("\nno attempts with nonzero extent to chart")
		return
	}
	fmt.Printf("\nfirst %d attempts (one row per attempt, %c = running):\n",
		len(spans), '#')
	for _, sp := range spans {
		start := int(float64(sp.Start) / maxEnd * width)
		end := width // still running: the bar extends to the chart's edge
		if sp.End >= 0 {
			end = int(float64(sp.End) / maxEnd * width)
		}
		if end <= start {
			end = start + 1
		}
		if end > width {
			end = width
		}
		bar := strings.Repeat(" ", start) + strings.Repeat("#", end-start)
		marker := " "
		switch {
		case sp.Outcome == "exhausted" || sp.Outcome == "lost":
			marker = "x"
		case sp.End < 0:
			marker = ">"
		}
		fmt.Printf("  task %3d w%d |%-*s|%s\n", sp.Task, sp.Worker, width, bar, marker)
	}
	fmt.Println("\nrows ending in x were killed (limit exceeded) or lost (worker died)")
	fmt.Printf("and resubmitted; %d attempts were lost to churn in total.\n",
		out.Stats.LostTasks)

	// The full span tree has far more to say than this chart: per-phase
	// critical-path analysis and an interactive timeline.
	if cp := trace.Store().CriticalPath(); cp != nil && len(cp.Phases) > 0 {
		fmt.Printf("\ncritical path: %.0fs across %d steps; dominant phase: %s (%.0f%%)\n",
			float64(cp.Total()), len(cp.Steps), cp.Phases[0].Kind, 100*cp.Phases[0].Fraction)
	}
	fmt.Println("for the interactive view, export with `lfmbench -trace-out t.json " +
		"-trace-format perfetto` and open it at https://ui.perfetto.dev")
}
